#include "omn/lp/basis_lu.hpp"

#include <cmath>
#include <cstddef>

namespace omn::lp {

namespace {

// Pivots below this absolute magnitude are treated as structural zeros; a
// column whose best remaining pivot falls under it makes the basis singular.
constexpr double kSingularTol = 1e-11;

std::size_t uz(int v) { return static_cast<std::size_t>(v); }

}  // namespace

bool BasisLu::factorize(
    int m, const std::vector<std::vector<std::pair<int, double>>>& columns) {
  m_ = m;
  pivot_row_.assign(uz(m), -1);
  row_step_.assign(uz(m), -1);
  diag_.assign(uz(m), 0.0);
  l_ptr_.assign(uz(m) + 1, 0);
  l_row_.clear();
  l_val_.clear();
  u_ptr_.assign(uz(m) + 1, 0);
  u_step_.clear();
  u_val_.clear();
  etas_.clear();
  eta_slot_.clear();
  eta_val_.clear();
  work_.assign(uz(m), 0.0);

  // Left-looking: for each column, apply the eliminations of all previous
  // steps in order, pick the largest remaining entry as pivot, store the
  // above-diagonal part as a U column and the multipliers as an L column.
  // The step scan is O(m) cheap integer work per column; numeric work only
  // happens where the column (plus fill) is nonzero.
  std::vector<double>& work = work_;
  for (int k = 0; k < m; ++k) {
    for (const auto& [row, value] : columns[uz(k)]) work[uz(row)] += value;

    for (int t = 0; t < k; ++t) {
      const double p = work[uz(pivot_row_[uz(t)])];
      if (p == 0.0) continue;
      for (int e = l_ptr_[uz(t)]; e < l_ptr_[uz(t) + 1]; ++e) {
        work[uz(l_row_[uz(e)])] -= l_val_[uz(e)] * p;
      }
    }

    int pivot = -1;
    double pivot_abs = kSingularTol;
    for (int i = 0; i < m; ++i) {
      if (row_step_[uz(i)] >= 0) continue;
      const double a = std::abs(work[uz(i)]);
      if (a > pivot_abs) {
        pivot_abs = a;
        pivot = i;
      }
    }
    if (pivot < 0) {
      // Numerically singular: scrub the work vector and bail.
      for (int i = 0; i < m; ++i) work[uz(i)] = 0.0;
      m_ = 0;
      return false;
    }

    for (int t = 0; t < k; ++t) {
      const double u = work[uz(pivot_row_[uz(t)])];
      if (u != 0.0) {
        u_step_.push_back(t);
        u_val_.push_back(u);
        work[uz(pivot_row_[uz(t)])] = 0.0;
      }
    }
    u_ptr_[uz(k) + 1] = static_cast<int>(u_step_.size());

    const double d = work[uz(pivot)];
    diag_[uz(k)] = d;
    work[uz(pivot)] = 0.0;
    for (int i = 0; i < m; ++i) {
      if (row_step_[uz(i)] >= 0 || work[uz(i)] == 0.0) continue;
      l_row_.push_back(i);
      l_val_.push_back(work[uz(i)] / d);
      work[uz(i)] = 0.0;
    }
    l_ptr_[uz(k) + 1] = static_cast<int>(l_row_.size());

    pivot_row_[uz(k)] = pivot;
    row_step_[uz(pivot)] = k;
  }
  ++factorizations_;
  return true;
}

void BasisLu::ftran(std::vector<double>& x) const {
  // B = P^T L U E_1 ... E_k, so x' = E_k^{-1}...E_1^{-1} U^{-1} L^{-1} P x.
  // The LU stage works in the permuted work array (y_t lives at raw row
  // pivot_row_[t]); the backward pass scatters into slot space.
  std::vector<double>& work = work_;
  work.swap(x);  // x currently row space; keep result buffer in x

  // Forward: y = L^{-1} P b.
  for (int t = 0; t < m_; ++t) {
    const double p = work[uz(pivot_row_[uz(t)])];
    if (p == 0.0) continue;
    for (int e = l_ptr_[uz(t)]; e < l_ptr_[uz(t) + 1]; ++e) {
      work[uz(l_row_[uz(e)])] -= l_val_[uz(e)] * p;
    }
  }
  // Backward: solve U z = y column-wise; z_t lands in x (slot space).
  for (int t = m_ - 1; t >= 0; --t) {
    const double zt = work[uz(pivot_row_[uz(t)])] / diag_[uz(t)];
    x[uz(t)] = zt;
    work[uz(pivot_row_[uz(t)])] = 0.0;
    if (zt == 0.0) continue;
    for (int e = u_ptr_[uz(t)]; e < u_ptr_[uz(t) + 1]; ++e) {
      work[uz(pivot_row_[uz(u_step_[uz(e)])])] -= u_val_[uz(e)] * zt;
    }
  }

  // Eta sweep in append order: x <- E_i^{-1} x, where E^{-1} divides the
  // spiked slot and back-substitutes it out of the others.
  for (const Eta& eta : etas_) {
    const double t = x[uz(eta.slot)] / eta.pivot;
    if (t != 0.0) {
      for (int e = eta.begin; e < eta.end; ++e) {
        x[uz(eta_slot_[uz(e)])] -= eta_val_[uz(e)] * t;
      }
    }
    x[uz(eta.slot)] = t;
  }
}

void BasisLu::btran(std::vector<double>& x) const {
  // Bᵀ = E_k^T ... E_1^T U^T L^T P, so y = P^T L^{-T} U^{-T} E_1^{-T} ... x.
  // Eta transposes first, in reverse append order: solving E^T z = c leaves
  // every component except the spiked slot unchanged.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = x[uz(it->slot)];
    for (int e = it->begin; e < it->end; ++e) {
      acc -= eta_val_[uz(e)] * x[uz(eta_slot_[uz(e)])];
    }
    x[uz(it->slot)] = acc / it->pivot;
  }

  // U^{-T}: forward over steps (gather from U columns).
  std::vector<double>& work = work_;
  for (int t = 0; t < m_; ++t) {
    double acc = x[uz(t)];
    for (int e = u_ptr_[uz(t)]; e < u_ptr_[uz(t) + 1]; ++e) {
      acc -= u_val_[uz(e)] * work[uz(u_step_[uz(e)])];
    }
    work[uz(t)] = acc / diag_[uz(t)];
  }
  // L^{-T}: backward; L column t's entries live at raw rows pivoted later.
  for (int t = m_ - 1; t >= 0; --t) {
    double acc = work[uz(t)];
    for (int e = l_ptr_[uz(t)]; e < l_ptr_[uz(t) + 1]; ++e) {
      acc -= l_val_[uz(e)] * work[uz(row_step_[uz(l_row_[uz(e)])])];
    }
    work[uz(t)] = acc;
  }
  // Undo the permutation: y[pivot_row_[t]] = w_t.
  for (int t = 0; t < m_; ++t) x[uz(pivot_row_[uz(t)])] = work[uz(t)];
  for (int t = 0; t < m_; ++t) work[uz(t)] = 0.0;
}

bool BasisLu::update(int slot, const std::vector<double>& w) {
  const double pivot = w[uz(slot)];
  if (std::abs(pivot) < kSingularTol) return false;
  Eta eta;
  eta.slot = slot;
  eta.pivot = pivot;
  eta.begin = static_cast<int>(eta_slot_.size());
  for (int i = 0; i < m_; ++i) {
    if (i == slot || w[uz(i)] == 0.0) continue;
    eta_slot_.push_back(i);
    eta_val_.push_back(w[uz(i)]);
  }
  eta.end = static_cast<int>(eta_slot_.size());
  etas_.push_back(eta);
  return true;
}

}  // namespace omn::lp
