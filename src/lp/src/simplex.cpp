#include "omn/lp/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace omn::lp {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

namespace {

enum VarState : std::int8_t { kAtLower = 0, kAtUpper = 1, kBasic = 2 };

/// Working state of one solve.  Column layout: [0, n) structural,
/// [n, n + m) slacks, [n + m, N) artificials.
class Tableau {
 public:
  Tableau(const Model& model, const SolveOptions& opts)
      : model_(model), opts_(opts) {
    build();
  }

  Solution run() {
    Solution out;
    const int iter_limit =
        opts_.max_iterations > 0
            ? opts_.max_iterations
            : std::max(20000, 60 * (m_ + n_));

    if (num_artificials_ > 0) {
      set_phase1_costs();
      const SolveStatus s1 = iterate(iter_limit, /*phase1=*/true);
      out.phase1_iterations = iterations_;
      if (s1 == SolveStatus::kIterationLimit) {
        out.status = s1;
        finalize(out);
        return out;
      }
      // Phase I objective = sum of artificial values.
      if (phase_objective() > opts_.feasibility_tol * scale_) {
        out.status = SolveStatus::kInfeasible;
        finalize(out);
        return out;
      }
      // Freeze artificials at zero for phase II.
      for (int j = n_ + m_; j < total_; ++j) upper_[j] = 0.0;
    }
    set_phase2_costs();
    out.status = iterate(iter_limit, /*phase1=*/false);
    finalize(out);
    return out;
  }

 private:
  // ---- setup -------------------------------------------------------------

  void build() {
    model_.validate();
    n_ = model_.num_variables();
    m_ = model_.num_rows();

    // Normalized rows: every row becomes a.x <= rhs; == rows keep their
    // orientation but get a [0,0] slack, making them equalities.
    row_rhs_.assign(m_, 0.0);
    std::vector<double> sign(m_, 1.0);
    for (int r = 0; r < m_; ++r) {
      const Row& row = model_.row(r);
      sign[r] = row.sense == RowSense::kGreaterEqual ? -1.0 : 1.0;
      row_rhs_[r] = sign[r] * row.rhs;
    }

    // Column-compressed structural matrix (duplicates summed via map pass).
    std::vector<std::vector<std::pair<int, double>>> cols(n_);
    for (const Triplet& t : model_.triplets()) {
      cols[static_cast<std::size_t>(t.var)].emplace_back(t.row,
                                                         sign[t.row] * t.value);
    }
    col_ptr_.assign(n_ + 1, 0);
    for (int j = 0; j < n_; ++j) {
      auto& entries = cols[static_cast<std::size_t>(j)];
      std::sort(entries.begin(), entries.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      // Merge duplicates.
      std::size_t out = 0;
      for (std::size_t k = 0; k < entries.size(); ++k) {
        if (out > 0 && entries[out - 1].first == entries[k].first) {
          entries[out - 1].second += entries[k].second;
        } else {
          entries[out++] = entries[k];
        }
      }
      entries.resize(out);
      col_ptr_[j + 1] = col_ptr_[j] + static_cast<int>(out);
    }
    col_row_.resize(static_cast<std::size_t>(col_ptr_[n_]));
    col_val_.resize(static_cast<std::size_t>(col_ptr_[n_]));
    for (int j = 0; j < n_; ++j) {
      int at = col_ptr_[j];
      for (const auto& [r, v] : cols[static_cast<std::size_t>(j)]) {
        col_row_[static_cast<std::size_t>(at)] = r;
        col_val_[static_cast<std::size_t>(at)] = v;
        ++at;
      }
    }

    // Bounds and initial nonbasic states.
    lower_.assign(static_cast<std::size_t>(n_ + 2 * m_), 0.0);
    upper_.assign(static_cast<std::size_t>(n_ + 2 * m_), kInfinity);
    state_.assign(static_cast<std::size_t>(n_ + 2 * m_), kAtLower);
    for (int j = 0; j < n_; ++j) {
      const Variable& v = model_.variable(j);
      lower_[static_cast<std::size_t>(j)] = v.lower;
      upper_[static_cast<std::size_t>(j)] = v.upper;
    }
    for (int r = 0; r < m_; ++r) {
      const int js = n_ + r;
      lower_[static_cast<std::size_t>(js)] = 0.0;
      upper_[static_cast<std::size_t>(js)] =
          model_.row(r).sense == RowSense::kEqual ? 0.0 : kInfinity;
    }

    // Residuals at the all-at-lower-bound point.
    std::vector<double> residual = row_rhs_;
    for (int j = 0; j < n_; ++j) {
      const double xj = lower_[static_cast<std::size_t>(j)];
      if (xj == 0.0) continue;
      for (int k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
        residual[static_cast<std::size_t>(col_row_[static_cast<std::size_t>(k)])] -=
            col_val_[static_cast<std::size_t>(k)] * xj;
      }
    }
    scale_ = 1.0;
    for (double b : row_rhs_) scale_ += std::abs(b);

    // Decide basis per row: slack if it can absorb the residual, else an
    // artificial with coefficient sign matching the residual.
    basis_.assign(static_cast<std::size_t>(m_), -1);
    row_scale_.assign(static_cast<std::size_t>(m_), 1.0);
    std::vector<double> art_beta;
    art_rows_.clear();
    for (int r = 0; r < m_; ++r) {
      const bool eq = model_.row(r).sense == RowSense::kEqual;
      const double res = residual[static_cast<std::size_t>(r)];
      const bool slack_ok = eq ? res == 0.0 : res >= 0.0;
      if (slack_ok) {
        basis_[static_cast<std::size_t>(r)] = n_ + r;
      } else {
        row_scale_[static_cast<std::size_t>(r)] = res >= 0.0 ? 1.0 : -1.0;
        art_rows_.push_back(r);
        art_beta.push_back(std::abs(res));
      }
    }
    num_artificials_ = static_cast<int>(art_rows_.size());
    total_ = n_ + m_ + num_artificials_;
    lower_.resize(static_cast<std::size_t>(total_), 0.0);
    upper_.resize(static_cast<std::size_t>(total_), kInfinity);
    state_.resize(static_cast<std::size_t>(total_), kAtLower);

    // Dense tableau T = B^-1 [A | I | A_art]; since the initial basis is
    // (signed) unit columns, T row r is the normalized row scaled by
    // row_scale_[r].
    tab_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(total_),
                0.0);
    for (int j = 0; j < n_; ++j) {
      for (int k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
        const int r = col_row_[static_cast<std::size_t>(k)];
        at(r, j) = row_scale_[static_cast<std::size_t>(r)] *
                   col_val_[static_cast<std::size_t>(k)];
      }
    }
    for (int r = 0; r < m_; ++r) {
      at(r, n_ + r) = row_scale_[static_cast<std::size_t>(r)];  // slack column
    }
    for (int a = 0; a < num_artificials_; ++a) {
      const int r = art_rows_[static_cast<std::size_t>(a)];
      // Artificial coefficient is row_scale_[r]; scaled by B^-1 it is +1.
      at(r, n_ + m_ + a) = 1.0;
    }

    // Basic values.
    beta_.assign(static_cast<std::size_t>(m_), 0.0);
    for (int r = 0; r < m_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] >= 0) {
        beta_[static_cast<std::size_t>(r)] = residual[static_cast<std::size_t>(r)];
      }
    }
    for (int a = 0; a < num_artificials_; ++a) {
      const int r = art_rows_[static_cast<std::size_t>(a)];
      basis_[static_cast<std::size_t>(r)] = n_ + m_ + a;
      beta_[static_cast<std::size_t>(r)] = art_beta[static_cast<std::size_t>(a)];
      state_[static_cast<std::size_t>(n_ + m_ + a)] = kBasic;
    }
    for (int r = 0; r < m_; ++r) {
      state_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])] =
          kBasic;
    }

    cost_.assign(static_cast<std::size_t>(total_), 0.0);
    d_.assign(static_cast<std::size_t>(total_), 0.0);
  }

  double& at(int r, int j) {
    return tab_[static_cast<std::size_t>(r) * static_cast<std::size_t>(total_) +
                static_cast<std::size_t>(j)];
  }
  double at(int r, int j) const {
    return tab_[static_cast<std::size_t>(r) * static_cast<std::size_t>(total_) +
                static_cast<std::size_t>(j)];
  }

  void set_phase1_costs() {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (int a = 0; a < num_artificials_; ++a) {
      cost_[static_cast<std::size_t>(n_ + m_ + a)] = 1.0;
    }
    recompute_reduced_costs();
  }

  void set_phase2_costs() {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (int j = 0; j < n_; ++j) {
      cost_[static_cast<std::size_t>(j)] = model_.variable(j).objective;
    }
    recompute_reduced_costs();
  }

  void recompute_reduced_costs() {
    // d = c - c_B^T T, computed row-wise over basic rows with nonzero cost.
    std::copy(cost_.begin(), cost_.end(), d_.begin());
    for (int r = 0; r < m_; ++r) {
      const double cb = cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])];
      if (cb == 0.0) continue;
      const double* row = &tab_[static_cast<std::size_t>(r) *
                                static_cast<std::size_t>(total_)];
      for (int j = 0; j < total_; ++j) d_[static_cast<std::size_t>(j)] -= cb * row[j];
    }
    for (int r = 0; r < m_; ++r) {
      d_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])] = 0.0;
    }
  }

  double phase_objective() const {
    double z = 0.0;
    for (int j = 0; j < total_; ++j) {
      if (cost_[static_cast<std::size_t>(j)] == 0.0) continue;
      z += cost_[static_cast<std::size_t>(j)] * value_of(j);
    }
    return z;
  }

  double value_of(int j) const {
    switch (state_[static_cast<std::size_t>(j)]) {
      case kAtLower: return lower_[static_cast<std::size_t>(j)];
      case kAtUpper: return upper_[static_cast<std::size_t>(j)];
      default: break;
    }
    for (int r = 0; r < m_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] == j) {
        return beta_[static_cast<std::size_t>(r)];
      }
    }
    return 0.0;  // unreachable for consistent state
  }

  // ---- main loop ---------------------------------------------------------

  SolveStatus iterate(int iter_limit, bool phase1) {
    std::vector<double> column(static_cast<std::size_t>(m_));
    int degenerate_streak = 0;
    bool bland = false;

    while (iterations_ < iter_limit) {
      const int q = choose_entering(bland, phase1);
      if (q < 0) return SolveStatus::kOptimal;

      // Direction: +1 when increasing from the lower bound.
      const double sigma = state_[static_cast<std::size_t>(q)] == kAtLower ? 1.0 : -1.0;
      for (int r = 0; r < m_; ++r) column[static_cast<std::size_t>(r)] = at(r, q);

      // Ratio test.
      double best_t = upper_[static_cast<std::size_t>(q)] -
                      lower_[static_cast<std::size_t>(q)];  // bound-flip range
      int pivot_row = -1;
      bool leave_at_lower = true;
      double pivot_abs = 0.0;
      for (int r = 0; r < m_; ++r) {
        const double a = column[static_cast<std::size_t>(r)];
        if (std::abs(a) <= opts_.pivot_tol) continue;
        const int b = basis_[static_cast<std::size_t>(r)];
        const double delta = sigma * a;  // basic value moves by -delta * t
        double t;
        bool hits_lower;
        if (delta > 0.0) {
          t = (beta_[static_cast<std::size_t>(r)] -
               lower_[static_cast<std::size_t>(b)]) / delta;
          hits_lower = true;
        } else {
          const double ub = upper_[static_cast<std::size_t>(b)];
          if (!std::isfinite(ub)) continue;
          t = (ub - beta_[static_cast<std::size_t>(r)]) / (-delta);
          hits_lower = false;
        }
        t = std::max(t, 0.0);
        const bool strictly_better = t < best_t - 1e-12;
        const bool tie = !strictly_better && t < best_t + 1e-12;
        const bool prefer = bland
                                ? (strictly_better ||
                                   (tie && pivot_row >= 0 &&
                                    b < basis_[static_cast<std::size_t>(pivot_row)]))
                                : (strictly_better ||
                                   (tie && std::abs(a) > pivot_abs));
        if (prefer) {
          best_t = std::min(best_t, t);
          pivot_row = r;
          leave_at_lower = hits_lower;
          pivot_abs = std::abs(a);
        }
      }

      if (!std::isfinite(best_t) && pivot_row < 0) {
        // Phase I is bounded below by zero, so this indicates phase II.
        return SolveStatus::kUnbounded;
      }

      ++iterations_;
      if (pivot_row < 0) {
        // Bound flip: the entering variable traverses to its other bound.
        const double range = best_t;
        for (int r = 0; r < m_; ++r) {
          beta_[static_cast<std::size_t>(r)] -=
              sigma * range * column[static_cast<std::size_t>(r)];
        }
        state_[static_cast<std::size_t>(q)] =
            state_[static_cast<std::size_t>(q)] == kAtLower ? kAtUpper : kAtLower;
        degenerate_streak = 0;
        bland = false;
        continue;
      }

      if (best_t <= 1e-12) {
        if (++degenerate_streak >= opts_.degenerate_switch) bland = true;
      } else {
        degenerate_streak = 0;
        bland = false;
      }

      pivot(pivot_row, q, sigma, best_t, leave_at_lower, column);
    }
    return SolveStatus::kIterationLimit;
  }

  int choose_entering(bool bland, bool phase1) const {
    // In phase II artificials are frozen at zero and never re-enter.
    const int limit = phase1 ? total_ : n_ + m_;
    int best = -1;
    double best_score = opts_.optimality_tol;
    for (int j = 0; j < limit; ++j) {
      const auto s = state_[static_cast<std::size_t>(j)];
      if (s == kBasic) continue;
      if (upper_[static_cast<std::size_t>(j)] -
              lower_[static_cast<std::size_t>(j)] <= 0.0) {
        continue;  // fixed variable can never improve
      }
      const double dj = d_[static_cast<std::size_t>(j)];
      const double score = s == kAtLower ? -dj : dj;
      if (score <= best_score) continue;
      if (bland) return j;  // first eligible index
      best_score = score;
      best = j;
    }
    return best;
  }

  void pivot(int r, int q, double sigma, double t, bool leave_at_lower,
             const std::vector<double>& column) {
    const int leaving = basis_[static_cast<std::size_t>(r)];
    const double entering_value =
        (sigma > 0.0 ? lower_[static_cast<std::size_t>(q)]
                     : upper_[static_cast<std::size_t>(q)]) +
        sigma * t;

    for (int i = 0; i < m_; ++i) {
      if (i == r) continue;
      beta_[static_cast<std::size_t>(i)] -=
          sigma * t * column[static_cast<std::size_t>(i)];
    }
    beta_[static_cast<std::size_t>(r)] = entering_value;

    // Eliminate column q from all rows and the cost row.
    const double inv = 1.0 / column[static_cast<std::size_t>(r)];
    double* prow = &tab_[static_cast<std::size_t>(r) *
                         static_cast<std::size_t>(total_)];
    for (int j = 0; j < total_; ++j) prow[j] *= inv;
    prow[q] = 1.0;
    for (int i = 0; i < m_; ++i) {
      if (i == r) continue;
      // prow is already normalized, so the elimination factor is the raw
      // column entry.
      const double f = column[static_cast<std::size_t>(i)];
      if (f == 0.0) continue;
      double* row = &tab_[static_cast<std::size_t>(i) *
                          static_cast<std::size_t>(total_)];
      for (int j = 0; j < total_; ++j) row[j] -= f * prow[j];
      row[q] = 0.0;
    }
    const double dq = d_[static_cast<std::size_t>(q)];
    if (dq != 0.0) {
      for (int j = 0; j < total_; ++j) d_[static_cast<std::size_t>(j)] -= dq * prow[j];
    }
    d_[static_cast<std::size_t>(q)] = 0.0;

    basis_[static_cast<std::size_t>(r)] = q;
    state_[static_cast<std::size_t>(q)] = kBasic;
    state_[static_cast<std::size_t>(leaving)] = leave_at_lower ? kAtLower : kAtUpper;
  }

  // ---- extraction ----------------------------------------------------------

  void finalize(Solution& out) const {
    out.iterations = iterations_;
    out.x.assign(static_cast<std::size_t>(n_), 0.0);
    std::vector<double> value(static_cast<std::size_t>(total_), 0.0);
    for (int j = 0; j < total_; ++j) {
      if (state_[static_cast<std::size_t>(j)] == kAtLower) {
        value[static_cast<std::size_t>(j)] = lower_[static_cast<std::size_t>(j)];
      } else if (state_[static_cast<std::size_t>(j)] == kAtUpper) {
        value[static_cast<std::size_t>(j)] = upper_[static_cast<std::size_t>(j)];
      }
    }
    for (int r = 0; r < m_; ++r) {
      value[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])] =
          beta_[static_cast<std::size_t>(r)];
    }
    for (int j = 0; j < n_; ++j) {
      // Clamp tiny numerical drift back into the variable's box.
      double v = value[static_cast<std::size_t>(j)];
      v = std::max(v, lower_[static_cast<std::size_t>(j)]);
      if (std::isfinite(upper_[static_cast<std::size_t>(j)])) {
        v = std::min(v, upper_[static_cast<std::size_t>(j)]);
      }
      out.x[static_cast<std::size_t>(j)] = v;
    }
    out.objective = model_.objective_value(out.x);
    out.max_violation = model_.max_infeasibility(out.x);
  }

  const Model& model_;
  SolveOptions opts_;

  int n_ = 0;            // structural variables
  int m_ = 0;            // rows
  int total_ = 0;        // structural + slack + artificial columns
  int num_artificials_ = 0;
  double scale_ = 1.0;   // 1 + |b|_1, for relative feasibility checks

  std::vector<int> col_ptr_;
  std::vector<int> col_row_;
  std::vector<double> col_val_;
  std::vector<double> row_rhs_;
  std::vector<double> row_scale_;
  std::vector<int> art_rows_;

  std::vector<double> lower_, upper_;
  std::vector<std::int8_t> state_;
  std::vector<int> basis_;
  std::vector<double> tab_;
  std::vector<double> beta_;
  std::vector<double> cost_;
  std::vector<double> d_;

  int iterations_ = 0;
};

}  // namespace

Solution SimplexSolver::solve(const Model& model,
                              const SolveOptions& options) const {
  if (model.num_rows() == 0) {
    // Pure box problem: each variable sits at the bound favoured by its
    // objective coefficient.
    Solution out;
    out.status = SolveStatus::kOptimal;
    out.x.resize(static_cast<std::size_t>(model.num_variables()));
    for (int j = 0; j < model.num_variables(); ++j) {
      const Variable& v = model.variable(j);
      if (v.objective >= 0.0) {
        out.x[static_cast<std::size_t>(j)] = v.lower;
      } else if (std::isfinite(v.upper)) {
        out.x[static_cast<std::size_t>(j)] = v.upper;
      } else {
        out.status = SolveStatus::kUnbounded;
        out.x[static_cast<std::size_t>(j)] = v.lower;
      }
    }
    out.objective = model.objective_value(out.x);
    return out;
  }
  Tableau tableau(model, options);
  return tableau.run();
}

}  // namespace omn::lp
