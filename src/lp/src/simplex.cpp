#include "omn/lp/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "omn/lp/basis_lu.hpp"
#include "omn/lp/pricing.hpp"
#include "omn/util/trace.hpp"

namespace omn::lp {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

std::string to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kRevised: return "revised";
    case Algorithm::kDenseTableau: return "dense-tableau";
  }
  return "unknown";
}

std::string to_string(Pricing pricing) {
  switch (pricing) {
    case Pricing::kDantzig: return "dantzig";
    case Pricing::kSteepestEdge: return "steepest-edge";
  }
  return "unknown";
}

namespace {

std::size_t uz(int v) { return static_cast<std::size_t>(v); }

/// The standard form both cores share.  Column layout: [0, n) structural,
/// [n, n + m) slacks; artificials (appended by each core from the residual)
/// follow at [n + m, total).  Built once per solve; the arithmetic here is
/// deliberately identical for both cores so the dense oracle and the revised
/// kernel disagree only through pivoting, never through the model.
struct StandardForm {
  int n = 0;
  int m = 0;
  // Column-compressed structural matrix, rows sign-normalized to <=.
  std::vector<int> col_ptr;
  std::vector<int> col_row;
  std::vector<double> col_val;
  std::vector<double> row_rhs;    // sign-normalized rhs
  std::vector<double> residual;   // residual at the all-at-lower point
  std::vector<double> lower;      // n + m bounds (structural + slack)
  std::vector<double> upper;
  std::vector<std::uint8_t> eq_row;  // RowSense::kEqual?
  double scale = 1.0;             // 1 + |b|_1, for relative checks

  static StandardForm build(const Model& model) {
    model.validate();
    StandardForm sf;
    sf.n = model.num_variables();
    sf.m = model.num_rows();
    const int n = sf.n;
    const int m = sf.m;

    // Normalized rows: every row becomes a.x <= rhs; == rows keep their
    // orientation but get a [0,0] slack, making them equalities.
    sf.row_rhs.assign(uz(m), 0.0);
    sf.eq_row.assign(uz(m), 0);
    std::vector<double> sign(uz(m), 1.0);
    for (int r = 0; r < m; ++r) {
      const Row& row = model.row(r);
      sign[uz(r)] = row.sense == RowSense::kGreaterEqual ? -1.0 : 1.0;
      sf.row_rhs[uz(r)] = sign[uz(r)] * row.rhs;
      sf.eq_row[uz(r)] = row.sense == RowSense::kEqual ? 1 : 0;
    }

    // Column-compressed structural matrix (duplicates summed via map pass).
    std::vector<std::vector<std::pair<int, double>>> cols(uz(n));
    for (const Triplet& t : model.triplets()) {
      cols[uz(t.var)].emplace_back(t.row, sign[uz(t.row)] * t.value);
    }
    sf.col_ptr.assign(uz(n) + 1, 0);
    for (int j = 0; j < n; ++j) {
      auto& entries = cols[uz(j)];
      std::sort(entries.begin(), entries.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      // Merge duplicates.
      std::size_t out = 0;
      for (std::size_t k = 0; k < entries.size(); ++k) {
        if (out > 0 && entries[out - 1].first == entries[k].first) {
          entries[out - 1].second += entries[k].second;
        } else {
          entries[out++] = entries[k];
        }
      }
      entries.resize(out);
      sf.col_ptr[uz(j) + 1] = sf.col_ptr[uz(j)] + static_cast<int>(out);
    }
    sf.col_row.resize(uz(sf.col_ptr[uz(n)]));
    sf.col_val.resize(uz(sf.col_ptr[uz(n)]));
    for (int j = 0; j < n; ++j) {
      int at = sf.col_ptr[uz(j)];
      for (const auto& [r, v] : cols[uz(j)]) {
        sf.col_row[uz(at)] = r;
        sf.col_val[uz(at)] = v;
        ++at;
      }
    }

    // Bounds: structural from the model, slacks [0, inf) (or fixed [0,0]
    // for equality rows).
    sf.lower.assign(uz(n + m), 0.0);
    sf.upper.assign(uz(n + m), kInfinity);
    for (int j = 0; j < n; ++j) {
      const Variable& v = model.variable(j);
      sf.lower[uz(j)] = v.lower;
      sf.upper[uz(j)] = v.upper;
    }
    for (int r = 0; r < m; ++r) {
      sf.lower[uz(n + r)] = 0.0;
      sf.upper[uz(n + r)] = sf.eq_row[uz(r)] ? 0.0 : kInfinity;
    }

    // Residuals at the all-at-lower-bound point.
    sf.residual = sf.row_rhs;
    for (int j = 0; j < n; ++j) {
      const double xj = sf.lower[uz(j)];
      if (xj == 0.0) continue;
      for (int k = sf.col_ptr[uz(j)]; k < sf.col_ptr[uz(j) + 1]; ++k) {
        sf.residual[uz(sf.col_row[uz(k)])] -= sf.col_val[uz(k)] * xj;
      }
    }
    sf.scale = 1.0;
    for (double b : sf.row_rhs) sf.scale += std::abs(b);
    return sf;
  }
};

int resolve_iteration_limit(const SolveOptions& opts, int n, int m) {
  return opts.max_iterations > 0 ? opts.max_iterations
                                 : std::max(20000, 60 * (m + n));
}

/// Exports the final basis over the n + m structural + slack columns.
/// Returns nullopt when an artificial column is still basic (degenerate
/// equality rows) — such a basis cannot be expressed, let alone re-imported.
std::optional<Basis> export_basis(int n, int m,
                                  const std::vector<VarStatus>& state,
                                  const std::vector<int>& basis_rows) {
  Basis b;
  b.basic.resize(uz(m));
  for (int r = 0; r < m; ++r) {
    const int j = basis_rows[uz(r)];
    if (j >= n + m) return std::nullopt;
    b.basic[uz(r)] = j;
  }
  b.state.assign(state.begin(), state.begin() + n + m);
  return b;
}

// ---------------------------------------------------------------------------
// Dense tableau core (the differential oracle).
// ---------------------------------------------------------------------------

/// Working state of one dense solve.  Column layout: [0, n) structural,
/// [n, n + m) slacks, [n + m, N) artificials.  Always prices Dantzig (plus
/// the Bland switch) so pivot sequences stay pinned across releases.
class DenseTableau {
 public:
  DenseTableau(const Model& model, const SolveOptions& opts)
      : model_(model), opts_(opts), sf_(StandardForm::build(model)) {
    build();
  }

  Solution run() {
    Solution out;
    const int iter_limit = resolve_iteration_limit(opts_, n_, m_);

    if (num_artificials_ > 0) {
      set_phase1_costs();
      const SolveStatus s1 = iterate(iter_limit, /*phase1=*/true);
      out.phase1_iterations = iterations_;
      if (s1 == SolveStatus::kIterationLimit) {
        out.status = s1;
        finalize(out);
        return out;
      }
      // Phase I objective = sum of artificial values.
      if (phase_objective() > opts_.feasibility_tol * scale_) {
        out.status = SolveStatus::kInfeasible;
        finalize(out);
        return out;
      }
      // Freeze artificials at zero for phase II.
      for (int j = n_ + m_; j < total_; ++j) upper_[uz(j)] = 0.0;
    }
    set_phase2_costs();
    out.status = iterate(iter_limit, /*phase1=*/false);
    finalize(out);
    return out;
  }

 private:
  // ---- setup -------------------------------------------------------------

  void build() {
    n_ = sf_.n;
    m_ = sf_.m;
    scale_ = sf_.scale;

    // Bounds and initial nonbasic states (artificial slots appended below).
    lower_ = sf_.lower;
    upper_ = sf_.upper;
    state_.assign(uz(n_ + m_), VarStatus::kAtLower);

    const std::vector<double>& residual = sf_.residual;

    // Decide basis per row: slack if it can absorb the residual, else an
    // artificial with coefficient sign matching the residual.
    basis_.assign(uz(m_), -1);
    row_scale_.assign(uz(m_), 1.0);
    std::vector<double> art_beta;
    art_rows_.clear();
    for (int r = 0; r < m_; ++r) {
      const bool eq = sf_.eq_row[uz(r)] != 0;
      const double res = residual[uz(r)];
      const bool slack_ok = eq ? res == 0.0 : res >= 0.0;
      if (slack_ok) {
        basis_[uz(r)] = n_ + r;
      } else {
        row_scale_[uz(r)] = res >= 0.0 ? 1.0 : -1.0;
        art_rows_.push_back(r);
        art_beta.push_back(std::abs(res));
      }
    }
    num_artificials_ = static_cast<int>(art_rows_.size());
    total_ = n_ + m_ + num_artificials_;
    active_cols_ = total_;
    lower_.resize(uz(total_), 0.0);
    upper_.resize(uz(total_), kInfinity);
    state_.resize(uz(total_), VarStatus::kAtLower);

    // Dense tableau T = B^-1 [A | I | A_art]; since the initial basis is
    // (signed) unit columns, T row r is the normalized row scaled by
    // row_scale_[r].
    tab_.assign(uz(m_) * uz(total_), 0.0);
    for (int j = 0; j < n_; ++j) {
      for (int k = sf_.col_ptr[uz(j)]; k < sf_.col_ptr[uz(j) + 1]; ++k) {
        const int r = sf_.col_row[uz(k)];
        at(r, j) = row_scale_[uz(r)] * sf_.col_val[uz(k)];
      }
    }
    for (int r = 0; r < m_; ++r) {
      at(r, n_ + r) = row_scale_[uz(r)];  // slack column
    }
    for (int a = 0; a < num_artificials_; ++a) {
      const int r = art_rows_[uz(a)];
      // Artificial coefficient is row_scale_[r]; scaled by B^-1 it is +1.
      at(r, n_ + m_ + a) = 1.0;
    }

    // Basic values.
    beta_.assign(uz(m_), 0.0);
    for (int r = 0; r < m_; ++r) {
      if (basis_[uz(r)] >= 0) beta_[uz(r)] = residual[uz(r)];
    }
    for (int a = 0; a < num_artificials_; ++a) {
      const int r = art_rows_[uz(a)];
      basis_[uz(r)] = n_ + m_ + a;
      beta_[uz(r)] = art_beta[uz(a)];
      state_[uz(n_ + m_ + a)] = VarStatus::kBasic;
    }
    for (int r = 0; r < m_; ++r) state_[uz(basis_[uz(r)])] = VarStatus::kBasic;

    // Column -> basis-row index, kept in lockstep with basis_ so value_of
    // is O(1) instead of an O(m) scan per lookup.
    pos_.assign(uz(total_), -1);
    for (int r = 0; r < m_; ++r) pos_[uz(basis_[uz(r)])] = r;

    cost_.assign(uz(total_), 0.0);
    d_.assign(uz(total_), 0.0);
  }

  double& at(int r, int j) { return tab_[uz(r) * uz(total_) + uz(j)]; }
  double at(int r, int j) const { return tab_[uz(r) * uz(total_) + uz(j)]; }

  void set_phase1_costs() {
    active_cols_ = total_;
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (int a = 0; a < num_artificials_; ++a) cost_[uz(n_ + m_ + a)] = 1.0;
    recompute_reduced_costs();
  }

  void set_phase2_costs() {
    // Frozen artificial columns are dead weight from here on: pricing,
    // pivot-row scaling and reduced-cost updates all stop at n + m.
    active_cols_ = n_ + m_;
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (int j = 0; j < n_; ++j) cost_[uz(j)] = model_.variable(j).objective;
    recompute_reduced_costs();
  }

  void recompute_reduced_costs() {
    // d = c - c_B^T T, computed row-wise over basic rows with nonzero cost.
    std::copy(cost_.begin(), cost_.end(), d_.begin());
    for (int r = 0; r < m_; ++r) {
      const double cb = cost_[uz(basis_[uz(r)])];
      if (cb == 0.0) continue;
      const double* row = &tab_[uz(r) * uz(total_)];
      for (int j = 0; j < active_cols_; ++j) d_[uz(j)] -= cb * row[j];
    }
    for (int r = 0; r < m_; ++r) d_[uz(basis_[uz(r)])] = 0.0;
  }

  double phase_objective() const {
    double z = 0.0;
    for (int j = 0; j < total_; ++j) {
      if (cost_[uz(j)] == 0.0) continue;
      z += cost_[uz(j)] * value_of(j);
    }
    return z;
  }

  double value_of(int j) const {
    switch (state_[uz(j)]) {
      case VarStatus::kAtLower: return lower_[uz(j)];
      case VarStatus::kAtUpper: return upper_[uz(j)];
      case VarStatus::kBasic: break;
    }
    return beta_[uz(pos_[uz(j)])];
  }

  // ---- main loop ---------------------------------------------------------

  SolveStatus iterate(int iter_limit, bool phase1) {
    std::vector<double> column(uz(m_));
    int degenerate_streak = 0;
    bool bland = false;

    while (iterations_ < iter_limit) {
      const int q = choose_entering(bland, phase1);
      if (q < 0) return SolveStatus::kOptimal;

      // Direction: +1 when increasing from the lower bound.
      const double sigma =
          state_[uz(q)] == VarStatus::kAtLower ? 1.0 : -1.0;
      for (int r = 0; r < m_; ++r) column[uz(r)] = at(r, q);

      // Ratio test.
      double best_t = upper_[uz(q)] - lower_[uz(q)];  // bound-flip range
      int pivot_row = -1;
      bool leave_at_lower = true;
      double pivot_abs = 0.0;
      for (int r = 0; r < m_; ++r) {
        const double a = column[uz(r)];
        if (std::abs(a) <= opts_.pivot_tol) continue;
        const int b = basis_[uz(r)];
        const double delta = sigma * a;  // basic value moves by -delta * t
        double t;
        bool hits_lower;
        if (delta > 0.0) {
          t = (beta_[uz(r)] - lower_[uz(b)]) / delta;
          hits_lower = true;
        } else {
          const double ub = upper_[uz(b)];
          if (!std::isfinite(ub)) continue;
          t = (ub - beta_[uz(r)]) / (-delta);
          hits_lower = false;
        }
        t = std::max(t, 0.0);
        const bool strictly_better = t < best_t - 1e-12;
        const bool tie = !strictly_better && t < best_t + 1e-12;
        const bool prefer =
            bland ? (strictly_better || (tie && pivot_row >= 0 &&
                                         b < basis_[uz(pivot_row)]))
                  : (strictly_better || (tie && std::abs(a) > pivot_abs));
        if (prefer) {
          best_t = std::min(best_t, t);
          pivot_row = r;
          leave_at_lower = hits_lower;
          pivot_abs = std::abs(a);
        }
      }

      if (!std::isfinite(best_t) && pivot_row < 0) {
        // Phase I is bounded below by zero, so this indicates phase II.
        return SolveStatus::kUnbounded;
      }

      ++iterations_;
      if (pivot_row < 0) {
        // Bound flip: the entering variable traverses to its other bound.
        const double range = best_t;
        for (int r = 0; r < m_; ++r) {
          beta_[uz(r)] -= sigma * range * column[uz(r)];
        }
        state_[uz(q)] = state_[uz(q)] == VarStatus::kAtLower
                            ? VarStatus::kAtUpper
                            : VarStatus::kAtLower;
        degenerate_streak = 0;
        bland = false;
        continue;
      }

      if (best_t <= 1e-12) {
        if (++degenerate_streak >= opts_.degenerate_switch) bland = true;
      } else {
        degenerate_streak = 0;
        bland = false;
      }

      pivot(pivot_row, q, sigma, best_t, leave_at_lower, column);
    }
    return SolveStatus::kIterationLimit;
  }

  int choose_entering(bool bland, bool phase1) const {
    // In phase II artificials are frozen at zero and never re-enter.
    const int limit = phase1 ? total_ : n_ + m_;
    int best = -1;
    double best_score = opts_.optimality_tol;
    for (int j = 0; j < limit; ++j) {
      const VarStatus s = state_[uz(j)];
      if (s == VarStatus::kBasic) continue;
      if (upper_[uz(j)] - lower_[uz(j)] <= 0.0) {
        continue;  // fixed variable can never improve
      }
      const double dj = d_[uz(j)];
      const double score = s == VarStatus::kAtLower ? -dj : dj;
      if (score <= best_score) continue;
      if (bland) return j;  // first eligible index
      best_score = score;
      best = j;
    }
    return best;
  }

  void pivot(int r, int q, double sigma, double t, bool leave_at_lower,
             const std::vector<double>& column) {
    const int leaving = basis_[uz(r)];
    const double entering_value =
        (sigma > 0.0 ? lower_[uz(q)] : upper_[uz(q)]) + sigma * t;

    for (int i = 0; i < m_; ++i) {
      if (i == r) continue;
      beta_[uz(i)] -= sigma * t * column[uz(i)];
    }
    beta_[uz(r)] = entering_value;

    // Eliminate column q from all rows and the cost row.  Only the active
    // columns are touched: in phase II the frozen artificial columns are
    // never read again, so scaling them would be pure waste.
    const double inv = 1.0 / column[uz(r)];
    double* prow = &tab_[uz(r) * uz(total_)];
    for (int j = 0; j < active_cols_; ++j) prow[j] *= inv;
    prow[q] = 1.0;
    for (int i = 0; i < m_; ++i) {
      if (i == r) continue;
      // prow is already normalized, so the elimination factor is the raw
      // column entry.
      const double f = column[uz(i)];
      if (f == 0.0) continue;
      double* row = &tab_[uz(i) * uz(total_)];
      for (int j = 0; j < active_cols_; ++j) row[j] -= f * prow[j];
      row[q] = 0.0;
    }
    const double dq = d_[uz(q)];
    if (dq != 0.0) {
      for (int j = 0; j < active_cols_; ++j) d_[uz(j)] -= dq * prow[j];
    }
    d_[uz(q)] = 0.0;

    basis_[uz(r)] = q;
    pos_[uz(leaving)] = -1;
    pos_[uz(q)] = r;
    state_[uz(q)] = VarStatus::kBasic;
    state_[uz(leaving)] =
        leave_at_lower ? VarStatus::kAtLower : VarStatus::kAtUpper;
  }

  // ---- extraction --------------------------------------------------------

  void finalize(Solution& out) const {
    out.iterations = iterations_;
    out.x.assign(uz(n_), 0.0);
    std::vector<double> value(uz(total_), 0.0);
    for (int j = 0; j < total_; ++j) {
      if (state_[uz(j)] == VarStatus::kAtLower) {
        value[uz(j)] = lower_[uz(j)];
      } else if (state_[uz(j)] == VarStatus::kAtUpper) {
        value[uz(j)] = upper_[uz(j)];
      }
    }
    for (int r = 0; r < m_; ++r) value[uz(basis_[uz(r)])] = beta_[uz(r)];
    for (int j = 0; j < n_; ++j) {
      // Clamp tiny numerical drift back into the variable's box.
      double v = value[uz(j)];
      v = std::max(v, lower_[uz(j)]);
      if (std::isfinite(upper_[uz(j)])) v = std::min(v, upper_[uz(j)]);
      out.x[uz(j)] = v;
    }
    out.objective = model_.objective_value(out.x);
    out.max_violation = model_.max_infeasibility(out.x);
    if (out.status == SolveStatus::kOptimal) {
      out.basis = export_basis(n_, m_, state_, basis_);
    }
  }

  const Model& model_;
  SolveOptions opts_;
  StandardForm sf_;

  int n_ = 0;            // structural variables
  int m_ = 0;            // rows
  int total_ = 0;        // structural + slack + artificial columns
  int active_cols_ = 0;  // columns touched by pivots in the current phase
  int num_artificials_ = 0;
  double scale_ = 1.0;   // 1 + |b|_1, for relative feasibility checks

  std::vector<double> row_scale_;
  std::vector<int> art_rows_;

  std::vector<double> lower_, upper_;
  std::vector<VarStatus> state_;
  std::vector<int> basis_;
  std::vector<int> pos_;  // column -> basis row, -1 when nonbasic
  std::vector<double> tab_;
  std::vector<double> beta_;
  std::vector<double> cost_;
  std::vector<double> d_;

  int iterations_ = 0;
};

// ---------------------------------------------------------------------------
// Revised simplex core.
// ---------------------------------------------------------------------------

/// Revised simplex over the same standard form: the basis lives in a
/// BasisLu (sparse LU + eta file), entering columns come from ftran, pivot
/// rows from btran, and reduced costs are maintained incrementally with a
/// full recompute at every refactorization.  Numeric drift — a maintained
/// reduced cost disagreeing with its freshly computed value — triggers an
/// early refactorization instead of a bad pivot.
class RevisedSolver {
 public:
  RevisedSolver(const Model& model, const SolveOptions& opts)
      : model_(model), opts_(opts), sf_(StandardForm::build(model)) {
    n_ = sf_.n;
    m_ = sf_.m;
  }

  Solution run() {
    Solution out;
    iter_limit_ = resolve_iteration_limit(opts_, n_, m_);

    bool warm = false;
    if (opts_.warm_start_basis.has_value()) {
      warm = try_warm_start(*opts_.warm_start_basis);
    }
    if (!warm) cold_start();
    out.warm_started = warm;

    if (num_artificials_ > 0) {
      OMN_TRACE_SPAN("simplex.phase1");
      set_costs(/*phase1=*/true);
      pricer_.reset(opts_.pricing, total_);
      if (!refactorize(/*phase1=*/true)) return numeric_failure(out);
      const SolveStatus s1 = iterate(/*phase1=*/true);
      out.phase1_iterations = iterations_;
      OMN_TRACE_SAMPLE("simplex.pivots", iterations_);
      if (numeric_failure_ || s1 == SolveStatus::kIterationLimit) {
        out.status = SolveStatus::kIterationLimit;
        finalize(out);
        return out;
      }
      if (phase1_objective() > opts_.feasibility_tol * sf_.scale) {
        out.status = SolveStatus::kInfeasible;
        finalize(out);
        return out;
      }
      // Freeze artificials at zero for phase II.
      for (int j = n_ + m_; j < total_; ++j) upper_[uz(j)] = 0.0;
    } else if (!warm) {
      if (!refactorize(/*phase1=*/false)) return numeric_failure(out);
    }

    {
      OMN_TRACE_SPAN("simplex.phase2");
      set_costs(/*phase1=*/false);
      recompute_reduced_costs(/*phase1=*/false);
      pricer_.reset(opts_.pricing, n_ + m_);
      out.status = iterate(/*phase1=*/false);
      OMN_TRACE_SAMPLE("simplex.pivots", iterations_);
    }
    if (numeric_failure_) out.status = SolveStatus::kIterationLimit;
    finalize(out);
    return out;
  }

 private:
  // ---- start bases -------------------------------------------------------

  void cold_start() {
    lower_ = sf_.lower;
    upper_ = sf_.upper;
    state_.assign(uz(n_ + m_), VarStatus::kAtLower);

    const std::vector<double>& residual = sf_.residual;
    basis_.assign(uz(m_), -1);
    beta_.assign(uz(m_), 0.0);
    art_rows_.clear();
    art_sign_.clear();
    for (int r = 0; r < m_; ++r) {
      const bool eq = sf_.eq_row[uz(r)] != 0;
      const double res = residual[uz(r)];
      const bool slack_ok = eq ? res == 0.0 : res >= 0.0;
      if (slack_ok) {
        basis_[uz(r)] = n_ + r;
        beta_[uz(r)] = res;
      } else {
        art_rows_.push_back(r);
        art_sign_.push_back(res >= 0.0 ? 1.0 : -1.0);
      }
    }
    num_artificials_ = static_cast<int>(art_rows_.size());
    total_ = n_ + m_ + num_artificials_;
    lower_.resize(uz(total_), 0.0);
    upper_.resize(uz(total_), kInfinity);
    state_.resize(uz(total_), VarStatus::kAtLower);
    for (int a = 0; a < num_artificials_; ++a) {
      const int r = art_rows_[uz(a)];
      basis_[uz(r)] = n_ + m_ + a;
      beta_[uz(r)] = std::abs(residual[uz(r)]);
    }
    for (int r = 0; r < m_; ++r) state_[uz(basis_[uz(r)])] = VarStatus::kBasic;
    pos_.assign(uz(total_), -1);
    for (int r = 0; r < m_; ++r) pos_[uz(basis_[uz(r)])] = r;
    init_scratch();
  }

  /// Validates and installs a caller-supplied basis; returns false (leaving
  /// the solver ready for cold_start) on any shape, consistency, linear
  /// algebra, or primal feasibility problem.
  bool try_warm_start(const Basis& b) {
    if (static_cast<int>(b.state.size()) != n_ + m_) return false;
    if (static_cast<int>(b.basic.size()) != m_) return false;
    std::vector<std::uint8_t> used(uz(n_ + m_), 0);
    for (int r = 0; r < m_; ++r) {
      const int j = b.basic[uz(r)];
      if (j < 0 || j >= n_ + m_ || used[uz(j)]) return false;
      if (b.state[uz(j)] != VarStatus::kBasic) return false;
      used[uz(j)] = 1;
    }
    for (int j = 0; j < n_ + m_; ++j) {
      switch (b.state[uz(j)]) {
        case VarStatus::kBasic:
          if (!used[uz(j)]) return false;  // basic but assigned to no row
          break;
        case VarStatus::kAtLower:
          break;
        case VarStatus::kAtUpper:
          if (!std::isfinite(sf_.upper[uz(j)])) return false;
          break;
        default:
          return false;  // foreign byte pattern (e.g. from a v2 cache entry)
      }
    }

    num_artificials_ = 0;
    total_ = n_ + m_;
    art_rows_.clear();
    art_sign_.clear();
    lower_ = sf_.lower;
    upper_ = sf_.upper;
    state_ = b.state;
    basis_.assign(uz(m_), -1);
    pos_.assign(uz(total_), -1);
    for (int r = 0; r < m_; ++r) {
      basis_[uz(r)] = b.basic[uz(r)];
      pos_[uz(b.basic[uz(r)])] = r;
    }
    init_scratch();

    if (!factorize_current_basis()) return false;
    compute_beta();
    // The imported basis must already be primal feasible for this model —
    // the usual case when only costs were perturbed.  Otherwise phase I
    // would be required anyway, so the cold start is no worse.
    const double tol = opts_.feasibility_tol * sf_.scale;
    for (int r = 0; r < m_; ++r) {
      const int j = basis_[uz(r)];
      if (beta_[uz(r)] < lower_[uz(j)] - tol) return false;
      const double ub = upper_[uz(j)];
      if (std::isfinite(ub) && beta_[uz(r)] > ub + tol) return false;
    }
    return true;
  }

  void init_scratch() {
    cost_.assign(uz(total_), 0.0);
    d_.assign(uz(total_), 0.0);
    w_.assign(uz(m_), 0.0);
    rho_.assign(uz(m_), 0.0);
    alpha_.assign(uz(total_), 0.0);
  }

  // ---- columns of the standard form --------------------------------------

  /// Adds raw column j (row space) into `out`, which must be zeroed.
  void scatter_column(int j, std::vector<double>& out) const {
    if (j < n_) {
      for (int k = sf_.col_ptr[uz(j)]; k < sf_.col_ptr[uz(j) + 1]; ++k) {
        out[uz(sf_.col_row[uz(k)])] += sf_.col_val[uz(k)];
      }
    } else if (j < n_ + m_) {
      out[uz(j - n_)] += 1.0;
    } else {
      out[uz(art_rows_[uz(j - n_ - m_)])] += art_sign_[uz(j - n_ - m_)];
    }
  }

  double column_dot(int j, const std::vector<double>& y) const {
    if (j < n_) {
      double acc = 0.0;
      for (int k = sf_.col_ptr[uz(j)]; k < sf_.col_ptr[uz(j) + 1]; ++k) {
        acc += sf_.col_val[uz(k)] * y[uz(sf_.col_row[uz(k)])];
      }
      return acc;
    }
    if (j < n_ + m_) return y[uz(j - n_)];
    return art_sign_[uz(j - n_ - m_)] * y[uz(art_rows_[uz(j - n_ - m_)])];
  }

  // ---- factorization / recomputation -------------------------------------

  bool factorize_current_basis() {
    std::vector<std::vector<std::pair<int, double>>> columns(uz(m_));
    for (int r = 0; r < m_; ++r) {
      const int j = basis_[uz(r)];
      auto& col = columns[uz(r)];
      if (j < n_) {
        col.reserve(uz(sf_.col_ptr[uz(j) + 1] - sf_.col_ptr[uz(j)]));
        for (int k = sf_.col_ptr[uz(j)]; k < sf_.col_ptr[uz(j) + 1]; ++k) {
          col.emplace_back(sf_.col_row[uz(k)], sf_.col_val[uz(k)]);
        }
      } else if (j < n_ + m_) {
        col.emplace_back(j - n_, 1.0);
      } else {
        col.emplace_back(art_rows_[uz(j - n_ - m_)],
                         art_sign_[uz(j - n_ - m_)]);
      }
    }
    return lu_.factorize(m_, columns);
  }

  void compute_beta() {
    // beta = B^{-1} (b - A_N x_N): subtract every nonbasic column at its
    // bound value, then ftran.
    std::vector<double>& rhs = w_;
    for (int r = 0; r < m_; ++r) rhs[uz(r)] = sf_.row_rhs[uz(r)];
    for (int j = 0; j < total_; ++j) {
      if (state_[uz(j)] == VarStatus::kBasic) continue;
      const double v = state_[uz(j)] == VarStatus::kAtLower ? lower_[uz(j)]
                                                            : upper_[uz(j)];
      if (v == 0.0) continue;
      if (j < n_) {
        for (int k = sf_.col_ptr[uz(j)]; k < sf_.col_ptr[uz(j) + 1]; ++k) {
          rhs[uz(sf_.col_row[uz(k)])] -= sf_.col_val[uz(k)] * v;
        }
      } else if (j < n_ + m_) {
        rhs[uz(j - n_)] -= v;
      } else {
        rhs[uz(art_rows_[uz(j - n_ - m_)])] -= art_sign_[uz(j - n_ - m_)] * v;
      }
    }
    lu_.ftran(rhs);
    beta_ = rhs;
    std::fill(w_.begin(), w_.end(), 0.0);
  }

  void recompute_reduced_costs(bool phase1) {
    // y = B^{-T} c_B via btran, then d_j = c_j - y . a_j per column.
    for (int r = 0; r < m_; ++r) rho_[uz(r)] = cost_[uz(basis_[uz(r)])];
    lu_.btran(rho_);
    const int limit = phase1 ? total_ : n_ + m_;
    for (int j = 0; j < limit; ++j) {
      d_[uz(j)] = state_[uz(j)] == VarStatus::kBasic
                      ? 0.0
                      : cost_[uz(j)] - column_dot(j, rho_);
    }
    std::fill(rho_.begin(), rho_.end(), 0.0);
  }

  /// Rebuilds the LU from the current basis and refreshes beta and reduced
  /// costs.  Returns false on a numerically singular basis.
  bool refactorize(bool phase1) {
    if (!factorize_current_basis()) return false;
    ++refactorizations_;
    OMN_TRACE_INSTANT("simplex.refactorize");
    OMN_TRACE_SAMPLE("simplex.pivots", iterations_);
    compute_beta();
    recompute_reduced_costs(phase1);
    return true;
  }

  void set_costs(bool phase1) {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    if (phase1) {
      for (int j = n_ + m_; j < total_; ++j) cost_[uz(j)] = 1.0;
    } else {
      for (int j = 0; j < n_; ++j) cost_[uz(j)] = model_.variable(j).objective;
    }
  }

  double phase1_objective() const {
    double z = 0.0;
    for (int j = n_ + m_; j < total_; ++j) {
      if (state_[uz(j)] == VarStatus::kBasic) z += beta_[uz(pos_[uz(j)])];
    }
    return z;
  }

  // ---- main loop ---------------------------------------------------------

  SolveStatus iterate(bool phase1) {
    int degenerate_streak = 0;
    bool bland = false;

    while (iterations_ < iter_limit_) {
      int q = choose_entering(bland, phase1);
      if (q < 0) {
        // Don't declare optimality off incrementally maintained reduced
        // costs: refresh once and re-price.  A clean factorization that
        // still finds no candidate is conclusive.
        if (lu_.eta_count() > 0) {
          if (!refactorize(phase1)) return fail();
          q = choose_entering(bland, phase1);
        }
        if (q < 0) return SolveStatus::kOptimal;
      }

      // Entering direction w = B^{-1} a_q (slot space).
      std::fill(w_.begin(), w_.end(), 0.0);
      scatter_column(q, w_);
      lu_.ftran(w_);

      // Drift check: the maintained d_q against one computed from w.  A
      // disagreement means the eta file has degraded — refactorize early
      // and re-price rather than pivot on a stale direction.
      double fresh = cost_[uz(q)];
      for (int r = 0; r < m_; ++r) {
        const double cb = cost_[uz(basis_[uz(r)])];
        if (cb != 0.0) fresh -= cb * w_[uz(r)];
      }
      if (std::abs(fresh - d_[uz(q)]) >
          1e-7 * (1.0 + std::abs(d_[uz(q)]))) {
        if (lu_.eta_count() > 0) {
          if (!refactorize(phase1)) return fail();
          continue;  // re-price with clean numbers
        }
        d_[uz(q)] = fresh;
        const double improve =
            state_[uz(q)] == VarStatus::kAtLower ? -fresh : fresh;
        if (improve <= opts_.optimality_tol) continue;  // was never eligible
      } else {
        d_[uz(q)] = fresh;
      }

      const double sigma =
          state_[uz(q)] == VarStatus::kAtLower ? 1.0 : -1.0;

      // Ratio test (same rules and tolerances as the dense oracle).
      double best_t = upper_[uz(q)] - lower_[uz(q)];  // bound-flip range
      int pivot_row = -1;
      bool leave_at_lower = true;
      double pivot_abs = 0.0;
      for (int r = 0; r < m_; ++r) {
        const double a = w_[uz(r)];
        if (std::abs(a) <= opts_.pivot_tol) continue;
        const int b = basis_[uz(r)];
        const double delta = sigma * a;
        double t;
        bool hits_lower;
        if (delta > 0.0) {
          t = (beta_[uz(r)] - lower_[uz(b)]) / delta;
          hits_lower = true;
        } else {
          const double ub = upper_[uz(b)];
          if (!std::isfinite(ub)) continue;
          t = (ub - beta_[uz(r)]) / (-delta);
          hits_lower = false;
        }
        t = std::max(t, 0.0);
        const bool strictly_better = t < best_t - 1e-12;
        const bool tie = !strictly_better && t < best_t + 1e-12;
        const bool prefer =
            bland ? (strictly_better || (tie && pivot_row >= 0 &&
                                         b < basis_[uz(pivot_row)]))
                  : (strictly_better || (tie && std::abs(a) > pivot_abs));
        if (prefer) {
          best_t = std::min(best_t, t);
          pivot_row = r;
          leave_at_lower = hits_lower;
          pivot_abs = std::abs(a);
        }
      }

      if (!std::isfinite(best_t) && pivot_row < 0) {
        return SolveStatus::kUnbounded;
      }

      ++iterations_;
      if (pivot_row < 0) {
        // Bound flip: no basis change, no eta, reduced costs unchanged.
        const double range = best_t;
        for (int r = 0; r < m_; ++r) {
          beta_[uz(r)] -= sigma * range * w_[uz(r)];
        }
        state_[uz(q)] = state_[uz(q)] == VarStatus::kAtLower
                            ? VarStatus::kAtUpper
                            : VarStatus::kAtLower;
        degenerate_streak = 0;
        bland = false;
        continue;
      }

      if (best_t <= 1e-12) {
        if (++degenerate_streak >= opts_.degenerate_switch) bland = true;
      } else {
        degenerate_streak = 0;
        bland = false;
      }

      if (!pivot(pivot_row, q, sigma, best_t, leave_at_lower, phase1)) {
        return fail();
      }
    }
    return SolveStatus::kIterationLimit;
  }

  int choose_entering(bool bland, bool phase1) const {
    const int limit = phase1 ? total_ : n_ + m_;
    int best = -1;
    double best_score = 0.0;
    for (int j = 0; j < limit; ++j) {
      const VarStatus s = state_[uz(j)];
      if (s == VarStatus::kBasic) continue;
      if (upper_[uz(j)] - lower_[uz(j)] <= 0.0) continue;  // fixed
      const double dj = d_[uz(j)];
      const double improve = s == VarStatus::kAtLower ? -dj : dj;
      if (improve <= opts_.optimality_tol) continue;
      if (bland) return j;  // first eligible index
      const double score = pricer_.score(j, improve);
      if (score > best_score) {
        best_score = score;
        best = j;
      }
    }
    return best;
  }

  bool pivot(int r, int q, double sigma, double t, bool leave_at_lower,
             bool phase1) {
    const int leaving = basis_[uz(r)];
    const double entering_value =
        (sigma > 0.0 ? lower_[uz(q)] : upper_[uz(q)]) + sigma * t;

    for (int i = 0; i < m_; ++i) {
      if (i == r) continue;
      beta_[uz(i)] -= sigma * t * w_[uz(i)];
    }
    beta_[uz(r)] = entering_value;

    // Pivot row rho^T A via btran(e_r); used for the incremental reduced
    // cost update d' = d - (d_q / alpha_rq) * alpha_row and Devex weights.
    std::fill(rho_.begin(), rho_.end(), 0.0);
    rho_[uz(r)] = 1.0;
    lu_.btran(rho_);

    const int limit = phase1 ? total_ : n_ + m_;
    const double alpha_q = w_[uz(r)];
    const double ratio = d_[uz(q)] / alpha_q;
    for (int j = 0; j < limit; ++j) {
      if (j == q || state_[uz(j)] == VarStatus::kBasic) {
        alpha_[uz(j)] = 0.0;
        continue;
      }
      const double a = column_dot(j, rho_);
      alpha_[uz(j)] = a;
      if (a != 0.0) d_[uz(j)] -= ratio * a;
    }
    std::fill(rho_.begin(), rho_.end(), 0.0);
    // The leaving column's tableau entry is exactly 1 (it IS basis column
    // r), so its new reduced cost is -ratio without a dot product.
    d_[uz(leaving)] = -ratio;
    d_[uz(q)] = 0.0;
    alpha_[uz(q)] = alpha_q;
    if (leaving < limit) alpha_[uz(leaving)] = 1.0;
    pricer_.on_pivot(q, leaving, alpha_q, alpha_);

    basis_[uz(r)] = q;
    pos_[uz(leaving)] = -1;
    pos_[uz(q)] = r;
    state_[uz(q)] = VarStatus::kBasic;
    state_[uz(leaving)] =
        leave_at_lower ? VarStatus::kAtLower : VarStatus::kAtUpper;

    // Basis update: append an eta, or refactorize when the file is full or
    // the eta pivot is numerically unusable.
    const int interval = std::max(1, opts_.refactor_interval);
    if (!lu_.update(r, w_) || lu_.eta_count() >= interval) {
      if (!refactorize(phase1)) return false;
    }
    return true;
  }

  SolveStatus fail() {
    numeric_failure_ = true;
    return SolveStatus::kIterationLimit;
  }

  Solution numeric_failure(Solution& out) {
    numeric_failure_ = true;
    out.status = SolveStatus::kIterationLimit;
    finalize(out);
    return out;
  }

  // ---- extraction --------------------------------------------------------

  void finalize(Solution& out) const {
    out.iterations = iterations_;
    out.refactorizations = refactorizations_;
    out.x.assign(uz(n_), 0.0);
    for (int j = 0; j < n_; ++j) {
      double v;
      switch (state_[uz(j)]) {
        case VarStatus::kAtLower: v = lower_[uz(j)]; break;
        case VarStatus::kAtUpper: v = upper_[uz(j)]; break;
        default: v = beta_[uz(pos_[uz(j)])]; break;
      }
      // Clamp tiny numerical drift back into the variable's box.
      v = std::max(v, lower_[uz(j)]);
      if (std::isfinite(upper_[uz(j)])) v = std::min(v, upper_[uz(j)]);
      out.x[uz(j)] = v;
    }
    out.objective = model_.objective_value(out.x);
    out.max_violation = model_.max_infeasibility(out.x);
    if (out.status == SolveStatus::kOptimal) {
      out.basis = export_basis(n_, m_, state_, basis_);
    }
  }

  const Model& model_;
  SolveOptions opts_;
  StandardForm sf_;

  int n_ = 0;
  int m_ = 0;
  int total_ = 0;
  int num_artificials_ = 0;
  int iter_limit_ = 0;

  std::vector<int> art_rows_;
  std::vector<double> art_sign_;

  std::vector<double> lower_, upper_;
  std::vector<VarStatus> state_;
  std::vector<int> basis_;
  std::vector<int> pos_;  // column -> basis slot, -1 when nonbasic
  std::vector<double> beta_;
  std::vector<double> cost_;
  std::vector<double> d_;

  BasisLu lu_;
  Pricer pricer_;

  // Scratch (sized by init_scratch, reused across iterations).
  std::vector<double> w_;      // entering direction, slot space
  std::vector<double> rho_;    // btran workspace, row space
  std::vector<double> alpha_;  // pivot row in column space

  int iterations_ = 0;
  int refactorizations_ = 0;
  bool numeric_failure_ = false;
};

}  // namespace

namespace {

/// Live-counter bookkeeping shared by both solver backends; feeds the
/// serve `stats` event and the counter tracks of a --trace export.
void count_solve(const Solution& out) {
  OMN_COUNTER_ADD("lp.solves", 1);
  OMN_COUNTER_ADD("lp.pivots", static_cast<std::uint64_t>(out.iterations));
  OMN_COUNTER_ADD("lp.refactorizations",
                  static_cast<std::uint64_t>(out.refactorizations));
}

}  // namespace

Solution SimplexSolver::solve(const Model& model,
                              const SolveOptions& options) const {
  if (model.num_rows() == 0) {
    // Pure box problem: each variable sits at the bound favoured by its
    // objective coefficient.
    Solution out;
    out.status = SolveStatus::kOptimal;
    out.x.resize(uz(model.num_variables()));
    Basis basis;
    basis.state.assign(uz(model.num_variables()), VarStatus::kAtLower);
    for (int j = 0; j < model.num_variables(); ++j) {
      const Variable& v = model.variable(j);
      if (v.objective >= 0.0) {
        out.x[uz(j)] = v.lower;
      } else if (std::isfinite(v.upper)) {
        out.x[uz(j)] = v.upper;
        basis.state[uz(j)] = VarStatus::kAtUpper;
      } else {
        out.status = SolveStatus::kUnbounded;
        out.x[uz(j)] = v.lower;
      }
    }
    out.objective = model.objective_value(out.x);
    if (out.status == SolveStatus::kOptimal) out.basis = std::move(basis);
    return out;
  }
  if (options.algorithm == Algorithm::kDenseTableau) {
    DenseTableau tableau(model, options);
    Solution out = tableau.run();
    count_solve(out);
    return out;
  }
  RevisedSolver solver(model, options);
  Solution out = solver.run();
  count_solve(out);
  return out;
}

}  // namespace omn::lp
