#include "omn/lp/pricing.hpp"

#include <algorithm>
#include <cstddef>

namespace omn::lp {

namespace {

// Reference-framework trust bound: once any weight grows past this the
// approximation has degraded enough that restarting from unit weights
// prices better than continuing (standard Devex practice).
constexpr double kWeightResetBound = 1e10;

}  // namespace

void Pricer::reset(Pricing rule, int num_columns) {
  rule_ = rule;
  max_weight_ = 1.0;
  if (rule_ == Pricing::kSteepestEdge) {
    weights_.assign(static_cast<std::size_t>(num_columns), 1.0);
  } else {
    weights_.clear();
  }
}

double Pricer::score(int j, double dj) const {
  if (rule_ != Pricing::kSteepestEdge) return dj;
  return dj * dj / weights_[static_cast<std::size_t>(j)];
}

void Pricer::on_pivot(int q, int leaving, double alpha_q,
                      const std::vector<double>& alpha_row) {
  if (rule_ != Pricing::kSteepestEdge) return;
  if (max_weight_ > kWeightResetBound) {
    std::fill(weights_.begin(), weights_.end(), 1.0);
    max_weight_ = 1.0;
  }
  const double gamma_q = weights_[static_cast<std::size_t>(q)];
  const double inv_sq = 1.0 / (alpha_q * alpha_q);
  const int count = static_cast<int>(weights_.size());
  for (int j = 0; j < count; ++j) {
    if (j == q) continue;
    const double a = alpha_row[static_cast<std::size_t>(j)];
    if (a == 0.0) continue;
    const double candidate = a * a * inv_sq * gamma_q;
    double& g = weights_[static_cast<std::size_t>(j)];
    if (candidate > g) {
      g = candidate;
      max_weight_ = std::max(max_weight_, g);
    }
  }
  // The leaving column can sit past the candidate range (a basic artificial
  // leaving in phase 2); it is not priced then, so no weight to maintain.
  if (leaving < count) {
    double& gl = weights_[static_cast<std::size_t>(leaving)];
    gl = std::max(gamma_q * inv_sq, 1.0);
    max_weight_ = std::max(max_weight_, gl);
  }
}

}  // namespace omn::lp
