#include "omn/topo/akamai.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "omn/util/rng.hpp"

namespace omn::topo {

namespace {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

net::OverlayInstance make_akamai_like(const AkamaiLikeConfig& cfg) {
  if (cfg.num_sources < 1 || cfg.num_reflectors < 1 || cfg.num_sinks < 1) {
    throw std::invalid_argument("make_akamai_like: empty stage");
  }
  if (cfg.num_metros < 1 || cfg.num_isps < 1) {
    throw std::invalid_argument("make_akamai_like: need metros and ISPs");
  }
  util::Rng rng(cfg.seed);
  net::OverlayInstance inst;

  // Metros on the unit square.  The "focus" region is the left half; the
  // focus_fraction of sinks lands there (EU-heavy events set it high).
  std::vector<Point> metros(static_cast<std::size_t>(cfg.num_metros));
  for (auto& m : metros) m = {rng.uniform(), rng.uniform()};

  auto place_near_metro = [&](const Point& metro) {
    return Point{metro.x + rng.normal(0.0, 0.03), metro.y + rng.normal(0.0, 0.03)};
  };
  auto pick_metro = [&](bool focus) -> const Point& {
    // Try a few times to hit the requested half; metros are random so a
    // side can be empty — fall back to any metro.
    for (int attempt = 0; attempt < 16; ++attempt) {
      const auto& m = metros[rng.uniform_index(metros.size())];
      if (focus == (m.x < 0.5)) return m;
    }
    return metros[rng.uniform_index(metros.size())];
  };

  // ISP quality: loss multiplier per ISP, and a per-ISP contract base rate.
  std::vector<double> isp_loss_factor(static_cast<std::size_t>(cfg.num_isps));
  std::vector<double> isp_price(static_cast<std::size_t>(cfg.num_isps));
  for (int g = 0; g < cfg.num_isps; ++g) {
    isp_loss_factor[static_cast<std::size_t>(g)] = rng.uniform(0.7, 1.5);
    isp_price[static_cast<std::size_t>(g)] = rng.uniform(0.6, 1.8);
  }

  // Sources (entrypoints): near a metro, one commodity each.
  std::vector<Point> src_pos;
  for (int k = 0; k < cfg.num_sources; ++k) {
    src_pos.push_back(place_near_metro(pick_metro(rng.bernoulli(0.5))));
    inst.add_source(net::Source{"src" + std::to_string(k), 1.0});
  }

  // Reflectors: round-robin over ISPs so colors partition evenly.
  std::vector<Point> refl_pos;
  std::vector<int> refl_isp;
  for (int i = 0; i < cfg.num_reflectors; ++i) {
    const int isp = i % cfg.num_isps;
    refl_pos.push_back(place_near_metro(pick_metro(rng.bernoulli(0.5))));
    refl_isp.push_back(isp);
    net::Reflector r;
    r.name = "refl" + std::to_string(i);
    r.color = isp;
    r.fanout = std::floor(rng.uniform(cfg.fanout_min, cfg.fanout_max + 1.0));
    // Build-out cost: colo in a pricey ISP costs more.
    r.build_cost = cfg.reflector_cost_scale *
                   isp_price[static_cast<std::size_t>(isp)] *
                   rng.uniform(0.6, 1.4);
    inst.add_reflector(std::move(r));
  }

  // Loss & price of a link between two points via an ISP.
  auto link_loss = [&](const Point& a, const Point& b, int isp) {
    const double jitter = std::exp(rng.normal(0.0, cfg.loss_jitter));
    const double raw =
        (cfg.base_loss + cfg.loss_per_unit_distance * distance(a, b)) *
        isp_loss_factor[static_cast<std::size_t>(isp)] * jitter;
    return std::clamp(raw, 1e-4, cfg.max_loss);
  };
  auto link_price = [&](const Point& a, const Point& b, int isp) {
    const double dist = distance(a, b);
    return cfg.edge_cost_scale * isp_price[static_cast<std::size_t>(isp)] *
           (0.25 + dist) * rng.pareto(1.0, cfg.price_pareto_shape);
  };
  // Propagation delay: the unit square spans ~120 ms of one-way latency
  // (a transatlantic-scale overlay), plus a small queueing jitter floor.
  auto link_delay = [&](const Point& a, const Point& b) {
    return 2.0 + 120.0 * distance(a, b) * rng.uniform(0.9, 1.3);
  };

  // Source -> reflector edges: dense (|S| is small in practice; the
  // entrypoint must be able to reach any reflector).
  for (int k = 0; k < cfg.num_sources; ++k) {
    for (int i = 0; i < cfg.num_reflectors; ++i) {
      net::SourceReflectorEdge e;
      e.source = k;
      e.reflector = i;
      e.loss = link_loss(src_pos[static_cast<std::size_t>(k)],
                         refl_pos[static_cast<std::size_t>(i)],
                         refl_isp[static_cast<std::size_t>(i)]);
      e.cost = link_price(src_pos[static_cast<std::size_t>(k)],
                          refl_pos[static_cast<std::size_t>(i)],
                          refl_isp[static_cast<std::size_t>(i)]);
      e.delay_ms = link_delay(src_pos[static_cast<std::size_t>(k)],
                              refl_pos[static_cast<std::size_t>(i)]);
      inst.add_source_reflector_edge(e);
    }
  }

  // Sinks (edgeservers) with candidate reflector lists.
  const int cand = cfg.candidates_per_sink <= 0
                       ? cfg.num_reflectors
                       : std::min(cfg.candidates_per_sink, cfg.num_reflectors);
  for (int j = 0; j < cfg.num_sinks; ++j) {
    const bool focus = rng.bernoulli(cfg.focus_fraction);
    const Point pos = place_near_metro(pick_metro(focus));
    net::Sink d;
    d.name = "edge" + std::to_string(j);
    d.commodity = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(cfg.num_sources)));
    d.threshold = rng.uniform(cfg.threshold_min, cfg.threshold_max);
    const int jj = inst.add_sink(std::move(d));

    // Closest reflectors by distance.
    std::vector<int> order(static_cast<std::size_t>(cfg.num_reflectors));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return distance(pos, refl_pos[static_cast<std::size_t>(a)]) <
             distance(pos, refl_pos[static_cast<std::size_t>(b)]);
    });
    const int k = inst.sink(jj).commodity;
    const double demand = net::OverlayInstance::demand_weight(
        inst.sink(jj).threshold);
    double weight_sum = 0.0;
    int added = 0;
    for (int rank = 0; rank < cfg.num_reflectors; ++rank) {
      const bool within_candidates = added < cand;
      const bool needs_repair = weight_sum < cfg.weight_margin * demand;
      if (!within_candidates && !needs_repair) break;
      const int i = order[static_cast<std::size_t>(rank)];
      net::ReflectorSinkEdge e;
      e.reflector = i;
      e.sink = jj;
      e.loss = link_loss(refl_pos[static_cast<std::size_t>(i)], pos,
                         refl_isp[static_cast<std::size_t>(i)]);
      e.cost = link_price(refl_pos[static_cast<std::size_t>(i)], pos,
                          refl_isp[static_cast<std::size_t>(i)]);
      e.delay_ms = link_delay(refl_pos[static_cast<std::size_t>(i)], pos);
      inst.add_reflector_sink_edge(e);
      ++added;
      const int sr = inst.find_sr_edge(k, i);
      weight_sum += net::OverlayInstance::path_weight(inst.sr_edge(sr).loss,
                                                      e.loss);
    }
    // Last-resort repair: if even all reflectors cannot meet the demand
    // with margin, relax the sink's threshold to what the network supports.
    if (weight_sum < cfg.weight_margin * demand) {
      const double affordable = weight_sum / std::max(cfg.weight_margin, 1.0);
      // W = -log(1 - phi)  =>  phi = 1 - exp(-W)
      inst.sink(jj).threshold = std::clamp(
          1.0 - std::exp(-affordable) - 1e-6, 0.5, 0.9999);
    }
  }

  inst.validate();
  return inst;
}

AkamaiLikeConfig global_event_config(int sinks, std::uint64_t seed) {
  AkamaiLikeConfig cfg;
  cfg.num_sinks = sinks;
  cfg.num_reflectors = std::max(8, sinks / 4);
  cfg.num_metros = std::max(6, sinks / 8);
  cfg.num_sources = 2;
  cfg.focus_fraction = 0.5;
  cfg.seed = seed;
  return cfg;
}

AkamaiLikeConfig eu_heavy_event_config(int sinks, std::uint64_t seed) {
  AkamaiLikeConfig cfg = global_event_config(sinks, seed);
  cfg.num_sources = 1;
  cfg.focus_fraction = 0.85;  // most edgeservers in the focus (EU) region
  return cfg;
}

}  // namespace omn::topo
