#include "omn/topo/figure3.hpp"

#include <algorithm>
#include <cmath>

#include "omn/flow/max_flow.hpp"

namespace omn::topo {

Figure3Instance make_figure3() {
  Figure3Instance fig;
  // Capacities as drawn in the paper's Figure 3: every edge has capacity 2
  // except a->q which has capacity 1; {ab, pq} jointly hold 3.
  fig.arcs = {
      {fig.s, fig.a, 2.0, "sa"}, {fig.s, fig.p, 2.0, "sp"},
      {fig.a, fig.b, 2.0, "ab"}, {fig.a, fig.q, 1.0, "aq"},
      {fig.p, fig.q, 2.0, "pq"}, {fig.b, fig.t, 2.0, "bt"},
      {fig.q, fig.t, 2.0, "qt"},
  };
  fig.entangled_arcs = {2, 4};  // ab, pq
  fig.entangled_capacity = 3.0;
  return fig;
}

double figure3_unconstrained_max_flow(const Figure3Instance& fig) {
  flow::Graph graph(fig.num_nodes);
  for (const auto& arc : fig.arcs) {
    graph.add_edge(arc.from, arc.to,
                   static_cast<std::int64_t>(std::llround(arc.capacity * 2.0)));
  }
  return static_cast<double>(flow::max_flow(graph, fig.s, fig.t)) / 2.0;
}

double figure3_integral_max_flow(const Figure3Instance& fig) {
  // Enumerate all integral arc flows; conservation at a, b, p, q plus the
  // entangled constraint ab + pq <= 3.  Capacities are tiny so the nested
  // enumeration is exact and instant.
  const auto cap = [&](const char* name) {
    for (const auto& arc : fig.arcs) {
      if (arc.name == name) return static_cast<int>(arc.capacity);
    }
    return 0;
  };
  const int cap_sa = cap("sa"), cap_sp = cap("sp"), cap_ab = cap("ab"),
            cap_aq = cap("aq"), cap_pq = cap("pq"), cap_bt = cap("bt"),
            cap_qt = cap("qt");
  const int entangled = static_cast<int>(fig.entangled_capacity);

  int best = 0;
  for (int ab = 0; ab <= cap_ab; ++ab) {
    for (int aq = 0; aq <= cap_aq; ++aq) {
      const int sa = ab + aq;
      if (sa > cap_sa) continue;
      for (int pq = 0; pq <= cap_pq; ++pq) {
        if (ab + pq > entangled) continue;
        const int sp = pq;
        if (sp > cap_sp) continue;
        const int bt = ab;
        if (bt > cap_bt) continue;
        const int qt = aq + pq;
        if (qt > cap_qt) continue;
        best = std::max(best, bt + qt);
      }
    }
  }
  return static_cast<double>(best);
}

}  // namespace omn::topo
