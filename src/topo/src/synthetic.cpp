#include "omn/topo/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "omn/util/rng.hpp"

namespace omn::topo {

net::OverlayInstance make_uniform_random(const UniformConfig& cfg) {
  if (cfg.num_sources < 1 || cfg.num_reflectors < 1 || cfg.num_sinks < 1) {
    throw std::invalid_argument("make_uniform_random: empty stage");
  }
  util::Rng rng(cfg.seed);
  net::OverlayInstance inst;

  for (int k = 0; k < cfg.num_sources; ++k) {
    inst.add_source(net::Source{"s" + std::to_string(k), 1.0});
  }
  for (int i = 0; i < cfg.num_reflectors; ++i) {
    net::Reflector r;
    r.name = "r" + std::to_string(i);
    r.build_cost = rng.uniform(cfg.reflector_cost_min, cfg.reflector_cost_max);
    r.fanout = std::floor(rng.uniform(cfg.fanout_min, cfg.fanout_max + 1.0));
    r.color = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(std::max(1, cfg.num_colors))));
    inst.add_reflector(std::move(r));
  }
  for (int k = 0; k < cfg.num_sources; ++k) {
    for (int i = 0; i < cfg.num_reflectors; ++i) {
      net::SourceReflectorEdge e;
      e.source = k;
      e.reflector = i;
      e.loss = rng.uniform(cfg.loss_min, cfg.loss_max);
      e.cost = rng.uniform(cfg.cost_min, cfg.cost_max);
      inst.add_source_reflector_edge(e);
    }
  }
  for (int j = 0; j < cfg.num_sinks; ++j) {
    net::Sink d;
    d.name = "d" + std::to_string(j);
    d.commodity = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(cfg.num_sources)));
    d.threshold = rng.uniform(cfg.threshold_min, cfg.threshold_max);
    const int jj = inst.add_sink(std::move(d));
    const int k = inst.sink(jj).commodity;
    const double demand =
        net::OverlayInstance::demand_weight(inst.sink(jj).threshold);

    std::vector<int> order(static_cast<std::size_t>(cfg.num_reflectors));
    std::iota(order.begin(), order.end(), 0);
    // Shuffle so repair edges are unbiased.
    for (std::size_t a = order.size(); a > 1; --a) {
      std::swap(order[a - 1], order[rng.uniform_index(a)]);
    }
    double weight_sum = 0.0;
    for (int i : order) {
      const bool want = rng.bernoulli(cfg.rd_edge_density);
      const bool repair = weight_sum < cfg.weight_margin * demand;
      if (!want && !repair) continue;
      net::ReflectorSinkEdge e;
      e.reflector = i;
      e.sink = jj;
      e.loss = rng.uniform(cfg.loss_min, cfg.loss_max);
      e.cost = rng.uniform(cfg.cost_min, cfg.cost_max);
      inst.add_reflector_sink_edge(e);
      const int sr = inst.find_sr_edge(k, i);
      weight_sum += net::OverlayInstance::path_weight(inst.sr_edge(sr).loss,
                                                      e.loss);
    }
    if (weight_sum < demand) {
      // All reflectors connected yet demand unmet: relax threshold.
      const double margin = std::max(cfg.weight_margin, 1.0);
      inst.sink(jj).threshold = std::clamp(
          1.0 - std::exp(-weight_sum / margin), 0.5, 0.9999);
    }
  }
  inst.validate();
  return inst;
}

SetCoverInstance make_set_cover(const std::vector<std::vector<int>>& sets,
                                int num_elements) {
  if (num_elements <= 0) {
    throw std::invalid_argument("make_set_cover: need elements");
  }
  SetCoverInstance out;
  out.sets = sets;
  out.num_elements = num_elements;
  net::OverlayInstance& inst = out.network;

  inst.add_source(net::Source{"stream", 1.0});

  // Loss chosen so one covering reflector meets the threshold exactly:
  // threshold 0.9 needs success 0.9; a path with failure 0.05 gives 0.95.
  constexpr double kThreshold = 0.9;
  constexpr double kPathLoss = 0.05;

  for (std::size_t s = 0; s < sets.size(); ++s) {
    net::Reflector r;
    r.name = "set" + std::to_string(s);
    r.build_cost = 1.0;  // unit cost: design cost == cover size
    r.fanout = static_cast<double>(num_elements);  // uncapacitated
    inst.add_reflector(std::move(r));
    net::SourceReflectorEdge e;
    e.source = 0;
    e.reflector = static_cast<int>(s);
    e.cost = 0.0;
    e.loss = 0.0;  // failure comes entirely from the RD hop
    inst.add_source_reflector_edge(e);
  }
  for (int el = 0; el < num_elements; ++el) {
    net::Sink d;
    d.name = "elem" + std::to_string(el);
    d.commodity = 0;
    d.threshold = kThreshold;
    inst.add_sink(std::move(d));
  }
  for (std::size_t s = 0; s < sets.size(); ++s) {
    for (int el : sets[s]) {
      if (el < 0 || el >= num_elements) {
        throw std::invalid_argument("make_set_cover: element out of range");
      }
      net::ReflectorSinkEdge e;
      e.reflector = static_cast<int>(s);
      e.sink = el;
      e.cost = 0.0;
      e.loss = kPathLoss;
      inst.add_reflector_sink_edge(e);
    }
  }
  inst.validate();
  return out;
}

SetCoverInstance make_random_set_cover(int num_elements, int num_sets,
                                       double membership_probability,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<int>> sets(static_cast<std::size_t>(num_sets));
  std::vector<bool> covered(static_cast<std::size_t>(num_elements), false);
  for (int s = 0; s < num_sets; ++s) {
    for (int el = 0; el < num_elements; ++el) {
      if (rng.bernoulli(membership_probability)) {
        sets[static_cast<std::size_t>(s)].push_back(el);
        covered[static_cast<std::size_t>(el)] = true;
      }
    }
  }
  // Guarantee coverage: drop uncovered elements into random sets.
  for (int el = 0; el < num_elements; ++el) {
    if (!covered[static_cast<std::size_t>(el)]) {
      sets[rng.uniform_index(static_cast<std::uint64_t>(num_sets))].push_back(el);
    }
  }
  return make_set_cover(sets, num_elements);
}

}  // namespace omn::topo
