#pragma once
// Structure-free synthetic instances: uniform random tripartite networks
// (for property tests and solver stress) and the set-cover reduction the
// paper uses for its hardness lower bound ("This problem can model SET
// COVER", Section 2).

#include <cstdint>
#include <vector>

#include "omn/net/instance.hpp"

namespace omn::topo {

struct UniformConfig {
  int num_sources = 2;
  int num_reflectors = 10;
  int num_sinks = 30;
  /// Probability that a given (reflector, sink) edge exists.
  double rd_edge_density = 0.6;
  double loss_min = 0.01;
  double loss_max = 0.2;
  double cost_min = 0.5;
  double cost_max = 5.0;
  double threshold_min = 0.9;
  double threshold_max = 0.995;
  double fanout_min = 4.0;
  double fanout_max = 16.0;
  double reflector_cost_min = 5.0;
  double reflector_cost_max = 50.0;
  int num_colors = 1;
  /// Guarantee feasibility by adding edges until candidate weight covers
  /// margin * demand.
  double weight_margin = 1.5;
  std::uint64_t seed = 1;
};

net::OverlayInstance make_uniform_random(const UniformConfig& config);

/// Encodes SET COVER: one commodity, one reflector per set (unit build
/// cost, zero edge costs), one sink per element with a threshold such that
/// any single covering reflector satisfies it.  The optimal design cost
/// equals the optimal set-cover size.
struct SetCoverInstance {
  net::OverlayInstance network;
  /// sets[s] = elements covered by set s (same indexing as reflectors).
  std::vector<std::vector<int>> sets;
  int num_elements = 0;
};

SetCoverInstance make_set_cover(const std::vector<std::vector<int>>& sets,
                                int num_elements);

/// Random set-cover instance where every element is covered by at least one
/// set.
SetCoverInstance make_random_set_cover(int num_elements, int num_sets,
                                       double membership_probability,
                                       std::uint64_t seed);

}  // namespace omn::topo
