#pragma once
// The paper's Figure 3: a flow network with an "entangled set" capacity
// constraint (a joint capacity over the edge set {ab, pq}) showing that
// such constraints create a gap between fractional and integral max flow
// (3.5 vs 3).  This motivates the Srinivasan-Teo rounding of Section 6.5.

#include <string>
#include <vector>

#include "omn/flow/graph.hpp"

namespace omn::topo {

struct Figure3Instance {
  /// Node indices.
  int s = 0, a = 1, b = 2, p = 3, q = 4, t = 5;
  int num_nodes = 6;

  struct Arc {
    int from;
    int to;
    double capacity;
    std::string name;
  };
  std::vector<Arc> arcs;

  /// Indices (into arcs) of the entangled set {ab, pq} with its capacity.
  std::vector<int> entangled_arcs;
  double entangled_capacity = 3.0;

  /// Values proven in the paper.
  double expected_fractional_max_flow = 3.5;
  double expected_integral_max_flow = 3.0;
};

/// Builds the exact network of Figure 3.
Figure3Instance make_figure3();

/// Max s-t flow ignoring the entangled-set constraint (sanity: 4.0),
/// computed with the Dinic substrate on 2x-scaled capacities.
double figure3_unconstrained_max_flow(const Figure3Instance& instance);

/// Brute-force integral max flow *with* the entangled constraint
/// (enumerates integer arc flows; the network is tiny).
double figure3_integral_max_flow(const Figure3Instance& instance);

}  // namespace omn::topo
