#pragma once
// Synthetic Akamai-like overlay topologies.
//
// The paper's future-work section plans to apply the algorithm "to
// real-world network data gleaned from Akamai's streaming network"; that
// data is proprietary, so this generator produces the closest synthetic
// equivalent (documented in DESIGN.md):
//
//  - entrypoints, reflectors and edgeservers live in geographic metros on a
//    unit square; packet loss grows with distance (long-haul paths lose
//    more), with multiplicative jitter and a per-ISP quality factor;
//  - bandwidth costs follow contract-like pricing: a per-ISP base rate
//    plus heavy-tailed (Pareto) variation, scaled by distance;
//  - reflectors are spread across ISPs ("colors") for the Section 6.4
//    extension;
//  - sinks connect to their closest reflectors (candidate lists), since a
//    real deployment never considers every (reflector, edgeserver) pair;
//  - a repair pass guarantees every sink's demand is satisfiable with a
//    configurable weight margin, mirroring how a capacity planner would
//    only designate reachable edgeservers for a stream.

#include <cstdint>

#include "omn/net/instance.hpp"

namespace omn::topo {

struct AkamaiLikeConfig {
  int num_metros = 12;
  int num_isps = 4;
  int num_sources = 2;   // one commodity per source (paper's WLOG)
  int num_reflectors = 16;
  int num_sinks = 48;
  /// Reflector candidates per sink (0 = connect to every reflector).
  int candidates_per_sink = 8;

  // Loss model.
  double base_loss = 0.004;            // short-haul floor
  double loss_per_unit_distance = 0.06;
  double loss_jitter = 0.35;           // lognormal sigma
  double max_loss = 0.45;

  // Quality demands.
  double threshold_min = 0.96;
  double threshold_max = 0.999;

  // Reflector provisioning.
  double fanout_min = 8.0;
  double fanout_max = 24.0;
  double reflector_cost_scale = 40.0;  // colo build-out cost scale

  // Bandwidth pricing.
  double edge_cost_scale = 1.0;
  double price_pareto_shape = 2.2;     // heavy tail of contract prices

  /// Fraction of sinks placed in the "focus" region (e.g. a Europe-heavy
  /// event); 0.5 = uniform.
  double focus_fraction = 0.5;

  /// Feasibility repair: ensure sum of candidate weights >= margin * W_j.
  double weight_margin = 2.0;

  std::uint64_t seed = 1;
};

net::OverlayInstance make_akamai_like(const AkamaiLikeConfig& config);

/// Preset: world-wide event, viewership spread evenly.
AkamaiLikeConfig global_event_config(int sinks, std::uint64_t seed);

/// Preset: EU-heavy viewership (intro's example: "a large event with
/// predominantly European viewership should include a large number of
/// edgeservers in Europe").
AkamaiLikeConfig eu_heavy_event_config(int sinks, std::uint64_t seed);

}  // namespace omn::topo
