#include "omn/obs/timeline.hpp"

#include <algorithm>

namespace omn::obs {

ProcessTrace drain_process_trace(std::string name) {
  ProcessTrace trace;
  trace.name = std::move(name);
  trace.threads = omn::util::Trace::drain();
  trace.counters = omn::util::counters_snapshot();
  return trace;
}

void merge_process_trace(ProcessTrace& into, const ProcessTrace& from) {
  if (into.name.empty()) into.name = from.name;
  for (const auto& thread : from.threads) {
    auto found = std::find_if(
        into.threads.begin(), into.threads.end(),
        [&](const omn::util::ThreadTrace& t) { return t.tid == thread.tid; });
    if (found == into.threads.end()) {
      into.threads.push_back(thread);
    } else {
      found->events.insert(found->events.end(), thread.events.begin(),
                           thread.events.end());
    }
  }
  std::sort(into.threads.begin(), into.threads.end(),
            [](const omn::util::ThreadTrace& a,
               const omn::util::ThreadTrace& b) { return a.tid < b.tid; });
  for (const auto& [name, value] : from.counters) {
    auto found = std::find_if(
        into.counters.begin(), into.counters.end(),
        [&](const auto& entry) { return entry.first == name; });
    if (found == into.counters.end()) {
      into.counters.emplace_back(name, value);
    } else {
      found->second = std::max(found->second, value);
    }
  }
  std::sort(into.counters.begin(), into.counters.end());
}

}  // namespace omn::obs
