#include "omn/obs/collector.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "omn/util/thread_annotations.hpp"

namespace omn::obs {
namespace {

/// Leaked global mailbox: deposits can come from detached scheduler
/// threads during shutdown races, so the storage must never be torn
/// down under them.
struct Mailbox {
  omn::util::Mutex mutex;
  std::vector<TimelineProcess> deposits OMN_GUARDED_BY(mutex);
};

Mailbox& mailbox() {
  static Mailbox* box = new Mailbox;
  return *box;
}

}  // namespace

void add_child_trace(TimelineProcess process) {
  Mailbox& box = mailbox();
  omn::util::LockGuard lock(box.mutex);
  box.deposits.push_back(std::move(process));
}

std::vector<TimelineProcess> take_child_traces() {
  std::vector<TimelineProcess> deposits;
  {
    Mailbox& box = mailbox();
    omn::util::LockGuard lock(box.mutex);
    deposits.swap(box.deposits);
  }

  std::map<std::uint32_t, TimelineProcess> merged;
  for (auto& deposit : deposits) {
    auto [slot, inserted] = merged.try_emplace(deposit.pid);
    if (inserted) {
      slot->second = std::move(deposit);
    } else {
      slot->second.offset_micros =
          std::min(slot->second.offset_micros, deposit.offset_micros);
      merge_process_trace(slot->second.trace, deposit.trace);
    }
  }

  std::vector<TimelineProcess> out;
  out.reserve(merged.size());
  for (auto& [pid, process] : merged) out.push_back(std::move(process));
  return out;
}

}  // namespace omn::obs
