#include "omn/obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "omn/obs/collector.hpp"
#include "omn/util/json.hpp"

namespace omn::obs {
namespace {

using omn::util::Json;
using omn::util::TraceEvent;

/// Fixed key order (name, ph, pid, tid, ts, ...) — util::Json preserves
/// insertion order, so every event object serializes identically.
Json event_object(const std::string& name, const char* ph, std::uint32_t pid,
                  std::uint32_t tid, std::int64_t ts) {
  Json j = Json::object();
  j.set("name", name);
  j.set("ph", ph);
  j.set("pid", pid);
  j.set("tid", tid);
  j.set("ts", ts);
  return j;
}

}  // namespace

std::string chrome_trace_json(const std::vector<TimelineProcess>& processes,
                              bool normalize_timestamps) {
  Json events = Json::array();
  for (const auto& process : processes) {
    {
      Json meta = Json::object();
      meta.set("name", "process_name");
      meta.set("ph", "M");
      meta.set("pid", process.pid);
      meta.set("tid", 0u);
      Json args = Json::object();
      args.set("name", process.trace.name);
      meta.set("args", std::move(args));
      events.push(std::move(meta));
    }

    std::int64_t max_ts = 0;
    for (const auto& thread : process.trace.threads) {
      for (const auto& event : thread.events) {
        const std::int64_t ts =
            normalize_timestamps
                ? static_cast<std::int64_t>(event.tick)
                : process.offset_micros +
                      static_cast<std::int64_t>(event.micros);
        max_ts = std::max(max_ts, ts);
        switch (event.kind) {
          case TraceEvent::Kind::kBegin:
            events.push(
                event_object(event.name, "B", process.pid, thread.tid, ts));
            break;
          case TraceEvent::Kind::kEnd:
            events.push(
                event_object(event.name, "E", process.pid, thread.tid, ts));
            break;
          case TraceEvent::Kind::kInstant: {
            Json j = event_object(event.name, "i", process.pid, thread.tid, ts);
            j.set("s", "t");  // thread-scoped instant
            events.push(std::move(j));
            break;
          }
          case TraceEvent::Kind::kCounter: {
            Json j = event_object(event.name, "C", process.pid, thread.tid, ts);
            Json args = Json::object();
            args.set("value", event.value);
            j.set("args", std::move(args));
            events.push(std::move(j));
            break;
          }
        }
      }
    }

    // Final counter-registry values as one sample per counter, placed
    // just past the process's last event so the counter tracks end at
    // their final heights.
    for (const auto& [name, value] : process.trace.counters) {
      Json j = event_object(name, "C", process.pid, 0, max_ts + 1);
      Json args = Json::object();
      args.set("value", value);
      j.set("args", std::move(args));
      events.push(std::move(j));
    }
  }

  Json root = Json::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ms");
  return root.dump();
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<TimelineProcess>& processes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return false;
  out << chrome_trace_json(processes) << "\n";
  return out.good();
}

namespace {

/// atexit-export destination (leaked: the hook runs after main).
std::string* g_export_path = nullptr;
std::string* g_export_name = nullptr;

}  // namespace

bool export_merged_trace(const std::string& path,
                         const std::string& process_name) {
  std::vector<TimelineProcess> processes;
  processes.push_back(
      TimelineProcess{0, 0, drain_process_trace(process_name)});
  for (TimelineProcess& child : take_child_traces()) {
    processes.push_back(std::move(child));
  }
  return write_chrome_trace(path, processes);
}

void export_merged_trace_at_exit(const std::string& path,
                                 const std::string& process_name) {
  const bool first = g_export_path == nullptr;
  if (first) {
    g_export_path = new std::string(path);
    g_export_name = new std::string(process_name);
  } else {
    *g_export_path = path;
    *g_export_name = process_name;
  }
  if (first) {
    std::atexit([] {
      if (!export_merged_trace(*g_export_path, *g_export_name)) {
        std::fprintf(stderr, "omn trace: cannot write %s\n",
                     g_export_path->c_str());
      }
    });
  }
}

}  // namespace omn::obs
