#include "omn/obs/trace_codec.hpp"

#include <cstdint>

#include "omn/util/bytes.hpp"
#include "omn/util/hash.hpp"

namespace omn::obs {
namespace {

// "OMNT" little-endian.
constexpr std::uint32_t kTraceMagic = 0x544E4D4Fu;
constexpr std::uint8_t kTraceVersion = 1;

// Minimum encoded bytes per element, for ByteReader::vec_size count
// validation before any allocation.
constexpr std::size_t kMinThreadBytes = 4 + 8;               // tid + count
constexpr std::size_t kMinEventBytes = 1 + 8 + 8 + 8 + 8;    // kind..value
constexpr std::size_t kMinCounterBytes = 8 + 8;              // name + value

}  // namespace

std::string encode_trace(const ProcessTrace& trace) {
  omn::util::ByteWriter w;
  w.u32(kTraceMagic);
  w.u8(kTraceVersion);
  w.str(trace.name);
  w.u64(trace.threads.size());
  for (const auto& thread : trace.threads) {
    w.u32(thread.tid);
    w.u64(thread.events.size());
    for (const auto& event : thread.events) {
      w.u8(static_cast<std::uint8_t>(event.kind));
      w.str(event.name);
      w.u64(event.tick);
      w.u64(event.micros);
      w.f64(event.value);
    }
  }
  w.u64(trace.counters.size());
  for (const auto& [name, value] : trace.counters) {
    w.str(name);
    w.u64(value);
  }
  w.u64(omn::util::content_checksum(w.bytes()));
  return w.bytes();
}

bool decode_trace(std::string_view bytes, ProcessTrace& trace) {
  if (bytes.size() < 8) return false;
  const std::string_view body = bytes.substr(0, bytes.size() - 8);
  {
    omn::util::ByteReader trailer(bytes.substr(bytes.size() - 8));
    std::uint64_t checksum = 0;
    if (!trailer.u64(checksum) ||
        checksum != omn::util::content_checksum(body)) {
      return false;
    }
  }

  omn::util::ByteReader r(body);
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  if (!r.u32(magic) || magic != kTraceMagic) return false;
  if (!r.u8(version) || version != kTraceVersion) return false;
  if (!r.str(trace.name)) return false;

  std::uint64_t thread_count = 0;
  if (!r.vec_size(thread_count, kMinThreadBytes)) return false;
  trace.threads.clear();
  trace.threads.reserve(static_cast<std::size_t>(thread_count));
  for (std::uint64_t t = 0; t < thread_count; ++t) {
    omn::util::ThreadTrace thread;
    if (!r.u32(thread.tid)) return false;
    std::uint64_t event_count = 0;
    if (!r.vec_size(event_count, kMinEventBytes)) return false;
    thread.events.reserve(static_cast<std::size_t>(event_count));
    for (std::uint64_t e = 0; e < event_count; ++e) {
      omn::util::TraceEvent event;
      std::uint8_t kind = 0;
      if (!r.u8(kind) ||
          kind > static_cast<std::uint8_t>(
                     omn::util::TraceEvent::Kind::kCounter)) {
        return false;
      }
      event.kind = static_cast<omn::util::TraceEvent::Kind>(kind);
      if (!r.str(event.name) || !r.u64(event.tick) || !r.u64(event.micros) ||
          !r.f64(event.value)) {
        return false;
      }
      thread.events.push_back(std::move(event));
    }
    trace.threads.push_back(std::move(thread));
  }

  std::uint64_t counter_count = 0;
  if (!r.vec_size(counter_count, kMinCounterBytes)) return false;
  trace.counters.clear();
  trace.counters.reserve(static_cast<std::size_t>(counter_count));
  for (std::uint64_t c = 0; c < counter_count; ++c) {
    std::string name;
    std::uint64_t value = 0;
    if (!r.str(name) || !r.u64(value)) return false;
    trace.counters.emplace_back(std::move(name), value);
  }

  return r.remaining() == 0;
}

}  // namespace omn::obs
