#pragma once
// Cross-process trace collector: where omn::dist deposits the worker
// timelines it decoded from result frames, and where the export path
// (bench_common / omn_design --trace) picks them up.
//
// The scheduler threads that receive worker frames live deep inside
// run_distributed, which returns only a SweepReport — threading a trace
// sink through every call signature would couple the sweep API to the
// observability layer.  Instead the collector is a tiny process-global
// mailbox: deposit under a mutex, drain once at export.

#include <vector>

#include "omn/obs/timeline.hpp"

namespace omn::obs {

/// Deposits one worker timeline (thread-safe; called by the dist
/// scheduler threads as result frames arrive).  Multiple deposits with
/// the same pid are merged at take_child_traces time.
void add_child_trace(TimelineProcess process);

/// Drains every deposited timeline, merged per pid (earliest offset
/// wins) and sorted by pid.  Returns empty when nothing was deposited.
std::vector<TimelineProcess> take_child_traces();

}  // namespace omn::obs
