#pragma once
// Chrome trace-event JSON exporter.
//
// Produces the "JSON Object Format" chrome://tracing and Perfetto load
// directly: {"traceEvents": [...], "displayTimeUnit": "ms"} with
// duration pairs (ph "B"/"E"), instants ("i"), counter samples ("C"),
// and process_name metadata ("M") so every process gets a labeled lane.
//
// Serialization is deterministic: processes in input order, threads in
// stored (tid) order, events in tick order, object keys in fixed
// insertion order via util::Json.  With normalize_timestamps the `ts`
// field is the per-thread tick instead of microseconds, which makes the
// output byte-stable across machines — that mode exists for the golden
// structural-trace test, not for viewing.

#include <string>
#include <vector>

#include "omn/obs/timeline.hpp"

namespace omn::obs {

/// Renders the merged timeline as Chrome trace-event JSON (compact, one
/// line).  `normalize_timestamps` substitutes per-thread ticks for
/// microseconds (deterministic bytes; goldens only).
std::string chrome_trace_json(const std::vector<TimelineProcess>& processes,
                              bool normalize_timestamps = false);

/// Writes chrome_trace_json(processes) to `path` (truncating); returns
/// false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<TimelineProcess>& processes);

/// Drains the calling process (pid 0, labeled `process_name`), collects
/// every deposited child timeline (dist worker lanes), and writes the
/// merged Chrome trace to `path`.  This is the whole of what a --trace
/// flag has to do at process end; returns false on I/O failure.
bool export_merged_trace(const std::string& path,
                         const std::string& process_name);

/// Registers an atexit hook that runs export_merged_trace(path,
/// process_name) — how --trace flags arrange the export without every
/// exit path calling it.  Later calls just update the path/name.
void export_merged_trace_at_exit(const std::string& path,
                                 const std::string& process_name);

}  // namespace omn::obs
