#pragma once
// Binary codec for ProcessTrace — the payload dist workers append to
// their result frames (frame protocol v3) so the parent can merge one
// timeline across processes.
//
// Format "omn-trace v1" (all integers little-endian, via ByteWriter):
//
//   u32  magic "OMNT"
//   u8   version (1)
//   str  process name
//   u64  thread count
//   per thread:
//     u32  tid
//     u64  event count
//     per event: u8 kind, str name, u64 tick, u64 micros, f64 value
//   u64  counter count
//   per counter: str name, u64 value
//   u64  content_checksum over every preceding byte
//
// decode_trace is defensive like every other wire reader in the tree:
// truncation, bad magic/version/kind, checksum mismatch, and trailing
// garbage all return false — a corrupt worker frame must never become a
// half-parsed timeline.

#include <string>
#include <string_view>

#include "omn/obs/timeline.hpp"

namespace omn::obs {

/// Serializes a ProcessTrace to the omn-trace v1 byte format.
std::string encode_trace(const ProcessTrace& trace);

/// Parses omn-trace v1 bytes; returns false (leaving `trace` in an
/// unspecified state) on any malformation.
bool decode_trace(std::string_view bytes, ProcessTrace& trace);

}  // namespace omn::obs
