#pragma once
// omn::obs timeline model: the export-side view of the trace data that
// util/trace.hpp records.
//
// A ProcessTrace is everything one process drained from its trace layer:
// per-thread event streams (tick-ordered) plus the final values of the
// named counter registry.  A TimelineProcess places one ProcessTrace on
// the merged multi-process timeline: the main process is pid 0 at offset
// 0; each dist worker gets pid (slot + 1) and a clock offset measured on
// the parent's clock when its scheduler thread started, so worker spans
// land roughly where they happened in parent time (the offset is for
// visualization only — nothing computes with cross-process timestamps).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "omn/util/trace.hpp"

namespace omn::obs {

/// One process's drained trace: thread event streams + counter finals.
struct ProcessTrace {
  /// Process label shown in the trace viewer ("e4_scaling", "worker 1").
  std::string name;
  /// Per-thread events in tid order; events within a thread are in tick
  /// order (the order util::Trace::drain produced them).
  std::vector<omn::util::ThreadTrace> threads;
  /// Named counter registry snapshot, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// A ProcessTrace placed on the merged timeline.
struct TimelineProcess {
  std::uint32_t pid = 0;
  /// Added to every event's `micros` at export (parent-clock placement
  /// of this process's trace epoch).  Ignored in normalized exports.
  std::int64_t offset_micros = 0;
  ProcessTrace trace;
};

/// Drains the calling process's trace layer (spans since the previous
/// drain + current counter values) into a ProcessTrace labeled `name`.
ProcessTrace drain_process_trace(std::string name);

/// Appends `from`'s events onto `into`, matching threads by tid (ticks
/// keep increasing across drains of the same process, so concatenation
/// preserves per-thread order).  Counters take the maximum per name —
/// they are cumulative snapshots, so the latest drain dominates.
void merge_process_trace(ProcessTrace& into, const ProcessTrace& from);

}  // namespace omn::obs
