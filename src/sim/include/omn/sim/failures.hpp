#pragma once
// Catastrophic-failure injection (Section 1.2 "Reliability" and the color
// extension 6.4): take down an entire ISP and measure who is still served.

#include <vector>

#include "omn/core/design.hpp"
#include "omn/net/instance.hpp"

namespace omn::sim {

/// A design with every reflector of `color` removed (z, y, x zeroed).
core::Design with_failed_color(const net::OverlayInstance& instance,
                               const core::Design& design, int color);

struct ColorFailureReport {
  int color = 0;
  /// Fraction of sinks that still receive at least one copy.
  double fraction_served = 0.0;
  /// Fraction of sinks still meeting their full threshold.
  double fraction_meeting_threshold = 0.0;
  /// Fraction meeting the relaxed (factor-4) guarantee threshold^(1/4) on
  /// the loss side.
  double fraction_meeting_quarter = 0.0;
  /// Mean delivery probability across sinks.
  double mean_delivery_probability = 0.0;
};

/// Evaluates the outage of each color in turn.
std::vector<ColorFailureReport> color_failure_sweep(
    const net::OverlayInstance& instance, const core::Design& design);

/// The worst (minimum) fraction_meeting_quarter over all single-ISP
/// outages — the headline resilience number of experiment E6.
double worst_case_quarter_fraction(
    const std::vector<ColorFailureReport>& sweep);

}  // namespace omn::sim
