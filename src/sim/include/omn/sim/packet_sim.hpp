#pragma once
// Monte Carlo packet-level simulator of a deployed design.
//
// For each simulated packet of each commodity:
//  - every *used* source->reflector edge drops it independently with its
//    loss probability (shared across all sinks served by that reflector,
//    so cross-sink correlations are faithful);
//  - every used reflector->sink edge drops it independently;
//  - the edgeserver reconstructs: the packet arrives if at least one of
//    its serving paths delivered it (paper Section 1.1: "if the kth packet
//    is missing in one copy ... the edgeserver waits for that packet to
//    arrive in one of the other identical copies").
//
// An optional correlated-failure model (Sections 6.3-6.5 motivation) makes
// an entire ISP drop a packet with a common-mode probability, on top of
// the per-link losses.
//
// Batches of packets run on a shared util::ExecutionContext; each batch
// owns a forked RNG stream and a private loss-counter array, merged at the
// end (no locking on the hot path).  The packet -> batch partition is a
// pure function of (num_packets, batch width): with threads > 0 the width
// is fixed by the config, so the report is identical no matter which
// context executes it; with threads == 0 the width is the executing
// context's concurrency, so the report is reproducible per context but
// varies across contexts (and machines) of different widths.

#include <cstdint>
#include <vector>

#include "omn/core/design.hpp"
#include "omn/net/instance.hpp"
#include "omn/util/execution_context.hpp"

namespace omn::sim {

struct SimulationConfig {
  std::int64_t num_packets = 100000;
  std::uint64_t seed = 1;
  /// Batch width: the packets are split into min(num_packets, width)
  /// deterministic batches.  0 = the execution context's concurrency.
  int threads = 0;
  /// Common-mode probability that an entire ISP (color) drops a packet.
  /// 0 disables the correlated model.
  double isp_outage_probability = 0.0;

  /// Playback deadline in milliseconds (paper Section 1.2: "packets that
  /// arrive very late ... must also be considered effectively useless").
  /// A copy counts only if sr.delay + rd.delay + jitter <= deadline.
  /// 0 disables the deadline.
  double deadline_ms = 0.0;
  /// Lognormal-ish per-packet queueing jitter (sigma of a half-normal, in
  /// ms) added to each path's deterministic delay.
  double jitter_sigma_ms = 0.0;
};

struct SimulationReport {
  /// Post-reconstruction loss rate per sink (fraction of packets missing).
  std::vector<double> sink_loss_rate;
  /// Fraction of sinks whose measured loss satisfies 1 - threshold.
  double fraction_meeting_threshold = 0.0;
  /// Fraction of sinks whose measured loss satisfies the paper's factor-4
  /// guarantee: loss <= (1 - threshold)^(1/4).
  double fraction_meeting_quarter_guarantee = 0.0;
  std::int64_t packets = 0;
};

/// The overload without a context runs on ExecutionContext::global();
/// pass a caller-owned context to share its pool instead.
SimulationReport simulate(const net::OverlayInstance& instance,
                          const core::Design& design,
                          const SimulationConfig& config);
SimulationReport simulate(const net::OverlayInstance& instance,
                          const core::Design& design,
                          const SimulationConfig& config,
                          const util::ExecutionContext& context);

}  // namespace omn::sim
