#pragma once
// Exact reliability computation.
//
// In a 3-level network the serving paths of a sink intersect only at the
// source, so per-packet losses on distinct paths are independent and the
// delivery probability has the closed form
//
//   P(delivered) = 1 - prod_paths (p_ki + p_ij - p_ki * p_ij).
//
// The paper (Section 1.5) points out this is exactly why the three-tier
// topology is used: deeper networks lose this property (network
// reliability is #P-complete in general, Valiant '79).

#include <vector>

#include "omn/core/design.hpp"
#include "omn/net/instance.hpp"

namespace omn::sim {

/// Exact per-sink delivery probability under a design.
std::vector<double> exact_delivery_probability(
    const net::OverlayInstance& instance, const core::Design& design);

/// Same, but all reflectors of `failed_color` are considered down.
std::vector<double> exact_delivery_probability_with_failed_color(
    const net::OverlayInstance& instance, const core::Design& design,
    int failed_color);

}  // namespace omn::sim
