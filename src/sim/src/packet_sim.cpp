#include "omn/sim/packet_sim.hpp"

#include <algorithm>
#include <cmath>

#include "omn/util/execution_context.hpp"
#include "omn/util/rng.hpp"

namespace omn::sim {

namespace {

/// Static routing tables extracted from the design once, so the per-packet
/// loop touches only flat arrays.
struct CompiledDesign {
  /// Used sr edges: loss and the (k, i) slot they implement.
  std::vector<double> sr_loss;
  std::vector<int> sr_slot_of_pair;  // y-slot -> index into sr_loss, or -1

  /// Per sink: list of (sr index, rd loss, color, delay) serving paths.
  struct Path {
    int sr_index;
    double rd_loss;
    int color;
    double delay_ms;
  };
  std::vector<std::vector<Path>> sink_paths;
};

CompiledDesign compile(const net::OverlayInstance& inst,
                       const core::Design& design) {
  CompiledDesign c;
  c.sr_slot_of_pair.assign(static_cast<std::size_t>(inst.num_sources()) *
                               static_cast<std::size_t>(inst.num_reflectors()),
                           -1);
  for (const net::SourceReflectorEdge& e : inst.sr_edges()) {
    const std::size_t slot = core::y_index(inst, e.source, e.reflector);
    if (!design.y[slot]) continue;
    c.sr_slot_of_pair[slot] = static_cast<int>(c.sr_loss.size());
    c.sr_loss.push_back(e.loss);
  }
  // Remember each used sr edge's delay for the deadline model.
  std::vector<double> sr_delay(c.sr_loss.size(), 0.0);
  for (const net::SourceReflectorEdge& e : inst.sr_edges()) {
    const int idx = c.sr_slot_of_pair[core::y_index(inst, e.source, e.reflector)];
    if (idx >= 0) sr_delay[static_cast<std::size_t>(idx)] = e.delay_ms;
  }
  c.sink_paths.resize(static_cast<std::size_t>(inst.num_sinks()));
  for (std::size_t id = 0; id < inst.rd_edges().size(); ++id) {
    if (!design.x[id]) continue;
    const net::ReflectorSinkEdge& e = inst.rd_edges()[id];
    const int k = inst.sink(e.sink).commodity;
    const int sr_index =
        c.sr_slot_of_pair[core::y_index(inst, k, e.reflector)];
    if (sr_index < 0) continue;  // x without y: inconsistent design; skip
    c.sink_paths[static_cast<std::size_t>(e.sink)].push_back(
        CompiledDesign::Path{sr_index, e.loss,
                             inst.reflector(e.reflector).color,
                             sr_delay[static_cast<std::size_t>(sr_index)] +
                                 e.delay_ms});
  }
  return c;
}

}  // namespace

SimulationReport simulate(const net::OverlayInstance& inst,
                          const core::Design& design,
                          const SimulationConfig& config) {
  // Mirror the designer's default_context(): a config that can only ever
  // use one batch must not construct the process-wide pool.
  if (config.threads == 1 || config.num_packets <= 1) {
    return simulate(inst, design, config, util::ExecutionContext::serial());
  }
  return simulate(inst, design, config, util::ExecutionContext::global());
}

SimulationReport simulate(const net::OverlayInstance& inst,
                          const core::Design& design,
                          const SimulationConfig& config,
                          const util::ExecutionContext& context) {
  const CompiledDesign compiled = compile(inst, design);
  const auto D = static_cast<std::size_t>(inst.num_sinks());
  const int colors = std::max(1, inst.num_colors());

  // Batches run on the shared context's pool.  The packet -> batch
  // partition (and hence the RNG stream consumed by each packet) is a pure
  // function of (num_packets, width) — never of how the chunks get
  // scheduled — so a run is reproducible for a fixed width.  threads > 0
  // pins the width (context-independent reports); threads == 0 takes the
  // width from the executing context.
  const std::size_t width = config.threads > 0
                                ? static_cast<std::size_t>(config.threads)
                                : context.concurrency();
  const auto packets = static_cast<std::size_t>(config.num_packets);
  const std::size_t batches = util::ExecutionContext::chunk_count(packets, width);
  std::vector<std::vector<std::int64_t>> lost_per_batch(
      batches, std::vector<std::int64_t>(D, 0));

  // Fork one RNG stream per batch up front (deterministic given the seed).
  util::Rng master(config.seed);
  std::vector<util::Rng> streams;
  streams.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) streams.push_back(master.fork());

  context.parallel_for_chunks(packets, width, [&](std::size_t begin,
                                                  std::size_t end,
                                                  std::size_t batch) {
    util::Rng rng = streams[batch];
    std::vector<char> sr_dropped(compiled.sr_loss.size(), 0);
    std::vector<char> isp_down(static_cast<std::size_t>(colors), 0);
    auto& lost = lost_per_batch[batch];

    for (std::size_t packet = begin; packet < end; ++packet) {
      // Correlated ISP outages for this packet.
      if (config.isp_outage_probability > 0.0) {
        for (int g = 0; g < colors; ++g) {
          isp_down[static_cast<std::size_t>(g)] =
              rng.bernoulli(config.isp_outage_probability) ? 1 : 0;
        }
      }
      // Source->reflector legs (shared by all sinks behind the reflector).
      for (std::size_t s = 0; s < compiled.sr_loss.size(); ++s) {
        sr_dropped[s] = rng.bernoulli(compiled.sr_loss[s]) ? 1 : 0;
      }
      // Per-sink reconstruction.
      for (std::size_t j = 0; j < D; ++j) {
        const auto& paths = compiled.sink_paths[j];
        if (paths.empty()) {
          ++lost[j];
          continue;
        }
        bool received = false;
        for (const auto& path : paths) {
          if (config.isp_outage_probability > 0.0 &&
              isp_down[static_cast<std::size_t>(path.color)]) {
            continue;
          }
          if (sr_dropped[static_cast<std::size_t>(path.sr_index)]) continue;
          if (rng.bernoulli(path.rd_loss)) continue;
          if (config.deadline_ms > 0.0) {
            double arrival = path.delay_ms;
            if (config.jitter_sigma_ms > 0.0) {
              arrival += std::abs(rng.normal(0.0, config.jitter_sigma_ms));
            }
            if (arrival > config.deadline_ms) continue;  // late = useless
          }
          received = true;
          break;
        }
        if (!received) ++lost[j];
      }
    }
  });

  SimulationReport report;
  report.packets = config.num_packets;
  report.sink_loss_rate.assign(D, 0.0);
  for (std::size_t j = 0; j < D; ++j) {
    std::int64_t lost = 0;
    for (const auto& batch : lost_per_batch) lost += batch[j];
    report.sink_loss_rate[j] =
        static_cast<double>(lost) / static_cast<double>(config.num_packets);
  }
  int meeting = 0;
  int meeting_quarter = 0;
  for (std::size_t j = 0; j < D; ++j) {
    const double allowed = 1.0 - inst.sink(static_cast<int>(j)).threshold;
    if (report.sink_loss_rate[j] <= allowed) ++meeting;
    if (report.sink_loss_rate[j] <= std::pow(allowed, 0.25)) ++meeting_quarter;
  }
  if (D > 0) {
    report.fraction_meeting_threshold =
        static_cast<double>(meeting) / static_cast<double>(D);
    report.fraction_meeting_quarter_guarantee =
        static_cast<double>(meeting_quarter) / static_cast<double>(D);
  }
  return report;
}

}  // namespace omn::sim
