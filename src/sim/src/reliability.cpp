#include "omn/sim/reliability.hpp"

namespace omn::sim {

namespace {

std::vector<double> delivery(const net::OverlayInstance& inst,
                             const core::Design& design, int failed_color) {
  std::vector<double> out(static_cast<std::size_t>(inst.num_sinks()), 0.0);
  for (int j = 0; j < inst.num_sinks(); ++j) {
    const int k = inst.sink(j).commodity;
    double failure_product = 1.0;
    bool any = false;
    for (int id : inst.sink_in(j)) {
      if (!design.x[static_cast<std::size_t>(id)]) continue;
      const net::ReflectorSinkEdge& e =
          inst.rd_edges()[static_cast<std::size_t>(id)];
      if (failed_color >= 0 &&
          inst.reflector(e.reflector).color == failed_color) {
        continue;
      }
      const int sr = inst.find_sr_edge(k, e.reflector);
      if (sr < 0) continue;
      failure_product *=
          net::OverlayInstance::path_failure(inst.sr_edge(sr).loss, e.loss);
      any = true;
    }
    out[static_cast<std::size_t>(j)] = any ? 1.0 - failure_product : 0.0;
  }
  return out;
}

}  // namespace

std::vector<double> exact_delivery_probability(
    const net::OverlayInstance& inst, const core::Design& design) {
  return delivery(inst, design, -1);
}

std::vector<double> exact_delivery_probability_with_failed_color(
    const net::OverlayInstance& inst, const core::Design& design,
    int failed_color) {
  return delivery(inst, design, failed_color);
}

}  // namespace omn::sim
