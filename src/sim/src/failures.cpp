#include "omn/sim/failures.hpp"

#include <algorithm>
#include <cmath>

#include "omn/sim/reliability.hpp"

namespace omn::sim {

core::Design with_failed_color(const net::OverlayInstance& inst,
                               const core::Design& design, int color) {
  core::Design out = design;
  for (int i = 0; i < inst.num_reflectors(); ++i) {
    if (inst.reflector(i).color != color) continue;
    out.z[static_cast<std::size_t>(i)] = 0;
    for (int k = 0; k < inst.num_sources(); ++k) {
      out.y[core::y_index(inst, k, i)] = 0;
    }
  }
  for (std::size_t id = 0; id < inst.rd_edges().size(); ++id) {
    const net::ReflectorSinkEdge& e = inst.rd_edges()[id];
    if (inst.reflector(e.reflector).color == color) out.x[id] = 0;
  }
  return out;
}

std::vector<ColorFailureReport> color_failure_sweep(
    const net::OverlayInstance& inst, const core::Design& design) {
  std::vector<ColorFailureReport> out;
  const int colors = inst.num_colors();
  const int D = inst.num_sinks();
  for (int color = 0; color < colors; ++color) {
    ColorFailureReport report;
    report.color = color;
    const std::vector<double> prob =
        exact_delivery_probability_with_failed_color(inst, design, color);
    int served = 0;
    int meeting = 0;
    int quarter = 0;
    double sum = 0.0;
    for (int j = 0; j < D; ++j) {
      const double p = prob[static_cast<std::size_t>(j)];
      sum += p;
      if (p > 0.0) ++served;
      const double allowed = 1.0 - inst.sink(j).threshold;
      if (1.0 - p <= allowed + 1e-12) ++meeting;
      if (1.0 - p <= std::pow(allowed, 0.25) + 1e-12) ++quarter;
    }
    if (D > 0) {
      report.fraction_served = static_cast<double>(served) / D;
      report.fraction_meeting_threshold = static_cast<double>(meeting) / D;
      report.fraction_meeting_quarter = static_cast<double>(quarter) / D;
      report.mean_delivery_probability = sum / D;
    }
    out.push_back(report);
  }
  return out;
}

double worst_case_quarter_fraction(
    const std::vector<ColorFailureReport>& sweep) {
  double worst = 1.0;
  for (const ColorFailureReport& r : sweep) {
    worst = std::min(worst, r.fraction_meeting_quarter);
  }
  return worst;
}

}  // namespace omn::sim
