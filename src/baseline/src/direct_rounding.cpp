#include "omn/baseline/direct_rounding.hpp"

#include <algorithm>
#include <cmath>

#include "omn/util/rng.hpp"

namespace omn::baseline {

core::Design direct_rounding_design(const net::OverlayInstance& inst,
                                    const core::OverlayLp& lp,
                                    const core::FractionalDesign& frac,
                                    double c, std::uint64_t seed) {
  util::Rng rng(seed);
  const double n = std::max(1, inst.num_sinks());
  const double mult = std::max(c * std::log(n), 1.0);

  core::Design d = core::Design::zeros(inst);
  for (std::size_t id = 0; id < inst.rd_edges().size(); ++id) {
    if (lp.x_var[id] < 0) continue;
    if (rng.bernoulli(std::min(frac.x[id] * mult, 1.0))) d.x[id] = 1;
  }
  // Close upward so the design is structurally valid; this pays for y and
  // z wherever an x was selected (plus independently rounded y/z).
  for (std::size_t s = 0; s < d.y.size(); ++s) {
    if (lp.y_var[s] >= 0 && rng.bernoulli(std::min(frac.y[s] * mult, 1.0))) {
      d.y[s] = 1;
    }
  }
  for (std::size_t i = 0; i < d.z.size(); ++i) {
    if (rng.bernoulli(std::min(frac.z[i] * mult, 1.0))) d.z[i] = 1;
  }
  d.close_upward(inst);
  return d;
}

}  // namespace omn::baseline
