#include "omn/baseline/random_heuristic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "omn/util/rng.hpp"

namespace omn::baseline {

RandomHeuristicResult random_design(const net::OverlayInstance& inst,
                                    std::uint64_t seed) {
  inst.validate();
  util::Rng rng(seed);
  RandomHeuristicResult out;
  out.design = core::Design::zeros(inst);
  core::Design& d = out.design;

  std::vector<double> headroom(static_cast<std::size_t>(inst.num_reflectors()));
  for (int i = 0; i < inst.num_reflectors(); ++i) {
    headroom[static_cast<std::size_t>(i)] = inst.reflector(i).fanout;
  }

  // Random sink order, then random candidate order per sink.
  std::vector<int> sink_order(static_cast<std::size_t>(inst.num_sinks()));
  std::iota(sink_order.begin(), sink_order.end(), 0);
  for (std::size_t a = sink_order.size(); a > 1; --a) {
    std::swap(sink_order[a - 1], sink_order[rng.uniform_index(a)]);
  }

  for (int j : sink_order) {
    double residual = inst.sink_demand_weight(j);
    std::vector<int> candidates = inst.sink_in(j);
    for (std::size_t a = candidates.size(); a > 1; --a) {
      std::swap(candidates[a - 1], candidates[rng.uniform_index(a)]);
    }
    const int k = inst.sink(j).commodity;
    for (int id : candidates) {
      if (residual <= 1e-12) break;
      const net::ReflectorSinkEdge& e =
          inst.rd_edges()[static_cast<std::size_t>(id)];
      const int sr = inst.find_sr_edge(k, e.reflector);
      if (sr < 0) continue;
      if (headroom[static_cast<std::size_t>(e.reflector)] < 1.0) continue;
      d.x[static_cast<std::size_t>(id)] = 1;
      d.y[core::y_index(inst, k, e.reflector)] = 1;
      d.z[static_cast<std::size_t>(e.reflector)] = 1;
      headroom[static_cast<std::size_t>(e.reflector)] -= 1.0;
      residual -= std::min(
          net::OverlayInstance::path_weight(inst.sr_edge(sr).loss, e.loss),
          inst.sink_demand_weight(j));
    }
    if (residual > 1e-9) out.covered_all = false;
  }
  return out;
}

}  // namespace omn::baseline
