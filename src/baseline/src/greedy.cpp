#include "omn/baseline/greedy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace omn::baseline {

GreedyResult greedy_design(const net::OverlayInstance& inst) {
  inst.validate();
  GreedyResult out;
  out.design = core::Design::zeros(inst);
  core::Design& d = out.design;

  const int R = inst.num_reflectors();
  const int D = inst.num_sinks();

  // Residual demand weight per sink and fanout headroom per reflector.
  std::vector<double> residual(static_cast<std::size_t>(D), 0.0);
  for (int j = 0; j < D; ++j) {
    residual[static_cast<std::size_t>(j)] = inst.sink_demand_weight(j);
  }
  std::vector<double> headroom(static_cast<std::size_t>(R), 0.0);
  for (int i = 0; i < R; ++i) {
    headroom[static_cast<std::size_t>(i)] = inst.reflector(i).fanout;
  }

  // Precompute per rd-edge: weight (clamped to its sink demand) and the
  // supporting sr edge id (or -1 when the sink's stream cannot reach i).
  const std::size_t E = inst.rd_edges().size();
  std::vector<double> weight(E, 0.0);
  std::vector<int> sr_of(E, -1);
  for (std::size_t id = 0; id < E; ++id) {
    const net::ReflectorSinkEdge& e = inst.rd_edges()[id];
    const int k = inst.sink(e.sink).commodity;
    const int sr = inst.find_sr_edge(k, e.reflector);
    sr_of[id] = sr;
    if (sr < 0) continue;
    weight[id] = std::min(
        net::OverlayInstance::path_weight(inst.sr_edge(sr).loss, e.loss),
        inst.sink_demand_weight(e.sink));
  }

  for (;;) {
    // Find the best-ratio feasible move.
    double best_ratio = 0.0;
    std::size_t best_edge = E;
    for (std::size_t id = 0; id < E; ++id) {
      if (d.x[id] || sr_of[id] < 0) continue;
      const net::ReflectorSinkEdge& e = inst.rd_edges()[id];
      const double gain =
          std::min(weight[id], residual[static_cast<std::size_t>(e.sink)]);
      if (gain <= 1e-12) continue;
      if (headroom[static_cast<std::size_t>(e.reflector)] < 1.0) continue;
      const int k = inst.sink(e.sink).commodity;
      double price = e.cost;
      if (!d.y[core::y_index(inst, k, e.reflector)]) {
        price += inst.sr_edge(sr_of[id]).cost;
      }
      if (!d.z[static_cast<std::size_t>(e.reflector)]) {
        price += inst.reflector(e.reflector).build_cost;
      }
      const double ratio =
          price > 0.0 ? gain / price : std::numeric_limits<double>::infinity();
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_edge = id;
      }
    }
    if (best_edge == E) break;

    // Apply it.
    const net::ReflectorSinkEdge& e = inst.rd_edges()[best_edge];
    const int k = inst.sink(e.sink).commodity;
    d.x[best_edge] = 1;
    d.y[core::y_index(inst, k, e.reflector)] = 1;
    d.z[static_cast<std::size_t>(e.reflector)] = 1;
    headroom[static_cast<std::size_t>(e.reflector)] -= 1.0;
    residual[static_cast<std::size_t>(e.sink)] =
        std::max(0.0, residual[static_cast<std::size_t>(e.sink)] -
                          weight[best_edge]);
    ++out.moves;
  }

  for (double r : residual) {
    if (r > 1e-9) {
      out.covered_all = false;
      break;
    }
  }
  return out;
}

}  // namespace omn::baseline
