#pragma once
// Greedy baseline: the natural extension of the greedy set-cover algorithm
// (Johnson/Chvatal) to capacitated, costed, redundant coverage.
//
// The paper's related-work section explains why this family is the obvious
// competitor ("The standard greedy approach for the set cover problem can
// be extended to accommodate capacitated sets...") and why it can fail for
// multiple commodities (coverage is no longer concave in the chosen
// reflector set).  Experiment E9 compares it against the LP-rounding
// algorithm.
//
// Move definition: a single (reflector i, sink j) assignment.  Its price is
// c_ij plus — if not yet paid — c_ki and r_i; its gain is the reduction of
// sink j's residual demand weight min(w_ij, residual_j).  The algorithm
// repeatedly takes the move with the best gain/price ratio, respecting
// fanout, until all residuals reach zero or no feasible move remains.

#include <cstdint>

#include "omn/core/design.hpp"
#include "omn/net/instance.hpp"

namespace omn::baseline {

struct GreedyResult {
  core::Design design;
  /// True when every sink's full demand weight was covered.
  bool covered_all = true;
  int moves = 0;
};

GreedyResult greedy_design(const net::OverlayInstance& instance);

}  // namespace omn::baseline
