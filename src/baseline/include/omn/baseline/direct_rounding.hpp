#pragma once
// Ablation: the "direct rounding approach" the paper mentions and rejects
// ("A direct rounding approach is possible, but would lead to a
// multicriterion logarithmic approximation", Section 1.6).
//
// Every LP variable is rounded independently up with probability
// min(value * c ln n, 1); no GAP stage.  Experiment E9/E3 contrasts its
// fanout/cost blow-up against the two-stage algorithm.

#include <cstdint>

#include "omn/core/design.hpp"
#include "omn/core/lp_builder.hpp"
#include "omn/net/instance.hpp"

namespace omn::baseline {

core::Design direct_rounding_design(const net::OverlayInstance& instance,
                                    const core::OverlayLp& lp,
                                    const core::FractionalDesign& fractional,
                                    double c, std::uint64_t seed);

}  // namespace omn::baseline
