#pragma once
// Random feasible baseline: for every sink, add uniformly random candidate
// edges until the demand weight is met (fanout permitting).  A floor for
// comparisons: anything principled must beat it on cost.

#include <cstdint>

#include "omn/core/design.hpp"
#include "omn/net/instance.hpp"

namespace omn::baseline {

struct RandomHeuristicResult {
  core::Design design;
  bool covered_all = true;
};

RandomHeuristicResult random_design(const net::OverlayInstance& instance,
                                    std::uint64_t seed);

}  // namespace omn::baseline
