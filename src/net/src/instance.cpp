#include "omn/net/instance.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace omn::net {

int OverlayInstance::add_source(Source source) {
  frozen_ = false;
  sources_.push_back(std::move(source));
  return static_cast<int>(sources_.size()) - 1;
}

int OverlayInstance::add_reflector(Reflector reflector) {
  frozen_ = false;
  reflectors_.push_back(std::move(reflector));
  return static_cast<int>(reflectors_.size()) - 1;
}

int OverlayInstance::add_sink(Sink sink) {
  frozen_ = false;
  sinks_.push_back(std::move(sink));
  return static_cast<int>(sinks_.size()) - 1;
}

int OverlayInstance::add_source_reflector_edge(SourceReflectorEdge edge) {
  frozen_ = false;
  sr_edges_.push_back(edge);
  return static_cast<int>(sr_edges_.size()) - 1;
}

int OverlayInstance::add_reflector_sink_edge(ReflectorSinkEdge edge) {
  frozen_ = false;
  rd_edges_.push_back(edge);
  return static_cast<int>(rd_edges_.size()) - 1;
}

int OverlayInstance::num_colors() const {
  int colors = 0;
  for (const Reflector& r : reflectors_) colors = std::max(colors, r.color + 1);
  return colors;
}

void OverlayInstance::freeze() const {
  if (frozen_) return;
  reflector_out_.assign(reflectors_.size(), {});
  sink_in_.assign(sinks_.size(), {});
  source_out_.assign(sources_.size(), {});
  sr_lookup_.assign(sources_.size(),
                    std::vector<int>(reflectors_.size(), -1));
  for (std::size_t id = 0; id < sr_edges_.size(); ++id) {
    const SourceReflectorEdge& e = sr_edges_[id];
    source_out_[static_cast<std::size_t>(e.source)].push_back(static_cast<int>(id));
    sr_lookup_[static_cast<std::size_t>(e.source)]
              [static_cast<std::size_t>(e.reflector)] = static_cast<int>(id);
  }
  for (std::size_t id = 0; id < rd_edges_.size(); ++id) {
    const ReflectorSinkEdge& e = rd_edges_[id];
    reflector_out_[static_cast<std::size_t>(e.reflector)].push_back(static_cast<int>(id));
    sink_in_[static_cast<std::size_t>(e.sink)].push_back(static_cast<int>(id));
  }
  frozen_ = true;
}

int OverlayInstance::find_sr_edge(int source, int reflector) const {
  freeze();
  if (source < 0 || source >= num_sources() || reflector < 0 ||
      reflector >= num_reflectors()) {
    return -1;
  }
  return sr_lookup_[static_cast<std::size_t>(source)]
                   [static_cast<std::size_t>(reflector)];
}

int OverlayInstance::find_rd_edge(int reflector, int sink) const {
  freeze();
  if (reflector < 0 || reflector >= num_reflectors()) return -1;
  for (int id : reflector_out_[static_cast<std::size_t>(reflector)]) {
    if (rd_edges_[static_cast<std::size_t>(id)].sink == sink) return id;
  }
  return -1;
}

const std::vector<int>& OverlayInstance::reflector_out(int reflector) const {
  freeze();
  return reflector_out_.at(static_cast<std::size_t>(reflector));
}

const std::vector<int>& OverlayInstance::sink_in(int sink) const {
  freeze();
  return sink_in_.at(static_cast<std::size_t>(sink));
}

const std::vector<int>& OverlayInstance::source_out(int source) const {
  freeze();
  return source_out_.at(static_cast<std::size_t>(source));
}

void OverlayInstance::validate() const {
  auto check_prob = [](double p, const char* what) {
    if (!(p >= 0.0 && p <= 1.0)) {
      throw std::invalid_argument(std::string("OverlayInstance: ") + what +
                                  " not in [0,1]");
    }
  };
  for (const Source& s : sources_) {
    if (!(s.bandwidth > 0.0)) {
      throw std::invalid_argument("OverlayInstance: non-positive bandwidth");
    }
  }
  for (const Reflector& r : reflectors_) {
    if (!(r.fanout > 0.0)) {
      throw std::invalid_argument("OverlayInstance: non-positive fanout");
    }
    if (r.build_cost < 0.0) {
      throw std::invalid_argument("OverlayInstance: negative build cost");
    }
    if (r.color < 0) {
      throw std::invalid_argument("OverlayInstance: negative color");
    }
    if (r.stream_capacity && !(*r.stream_capacity > 0.0)) {
      throw std::invalid_argument(
          "OverlayInstance: non-positive stream capacity");
    }
  }
  for (const Sink& d : sinks_) {
    if (d.commodity < 0 || d.commodity >= num_sources()) {
      throw std::invalid_argument("OverlayInstance: sink demands unknown commodity");
    }
    if (!(d.threshold > 0.0 && d.threshold < 1.0)) {
      throw std::invalid_argument("OverlayInstance: threshold not in (0,1)");
    }
  }
  std::set<std::pair<int, int>> seen_sr;
  for (const SourceReflectorEdge& e : sr_edges_) {
    if (e.source < 0 || e.source >= num_sources() || e.reflector < 0 ||
        e.reflector >= num_reflectors()) {
      throw std::invalid_argument("OverlayInstance: dangling SR edge");
    }
    if (e.cost < 0.0) throw std::invalid_argument("OverlayInstance: negative SR cost");
    check_prob(e.loss, "SR loss");
    if (!(e.delay_ms >= 0.0)) {
      throw std::invalid_argument("OverlayInstance: negative SR delay");
    }
    if (!seen_sr.emplace(e.source, e.reflector).second) {
      throw std::invalid_argument("OverlayInstance: duplicate SR edge");
    }
  }
  std::set<std::pair<int, int>> seen_rd;
  for (const ReflectorSinkEdge& e : rd_edges_) {
    if (e.reflector < 0 || e.reflector >= num_reflectors() || e.sink < 0 ||
        e.sink >= num_sinks()) {
      throw std::invalid_argument("OverlayInstance: dangling RD edge");
    }
    if (e.cost < 0.0) throw std::invalid_argument("OverlayInstance: negative RD cost");
    check_prob(e.loss, "RD loss");
    if (!(e.delay_ms >= 0.0)) {
      throw std::invalid_argument("OverlayInstance: negative RD delay");
    }
    if (e.capacity && !(*e.capacity >= 0.0)) {
      throw std::invalid_argument("OverlayInstance: negative RD capacity");
    }
    if (!seen_rd.emplace(e.reflector, e.sink).second) {
      throw std::invalid_argument("OverlayInstance: duplicate RD edge");
    }
  }
}

double OverlayInstance::path_failure(double loss_sr, double loss_rd) {
  return loss_sr + loss_rd - loss_sr * loss_rd;
}

double OverlayInstance::path_weight(double loss_sr, double loss_rd) {
  const double failure = std::max(path_failure(loss_sr, loss_rd), kMinFailure);
  return -std::log(failure);
}

double OverlayInstance::demand_weight(double threshold) {
  return -std::log(1.0 - threshold);
}

std::optional<double> OverlayInstance::weight(int reflector, int sink) const {
  const int rd = find_rd_edge(reflector, sink);
  if (rd < 0) return std::nullopt;
  const int k = this->sink(sink).commodity;
  const int sr = find_sr_edge(k, reflector);
  if (sr < 0) return std::nullopt;
  return path_weight(sr_edge(sr).loss, rd_edge(rd).loss);
}

double OverlayInstance::sink_demand_weight(int sink) const {
  return demand_weight(this->sink(sink).threshold);
}

double OverlayInstance::total_demand_weight() const {
  double total = 0.0;
  for (const Sink& d : sinks_) total += demand_weight(d.threshold);
  return total;
}

OverlayInstance OverlayInstance::expand_multi_demand(
    const OverlayInstance& multi,
    const std::vector<std::vector<std::pair<int, double>>>& demands) {
  if (static_cast<int>(demands.size()) != multi.num_sinks()) {
    throw std::invalid_argument("expand_multi_demand: demand list size mismatch");
  }
  OverlayInstance out;
  for (int k = 0; k < multi.num_sources(); ++k) out.add_source(multi.source(k));
  for (int i = 0; i < multi.num_reflectors(); ++i) {
    out.add_reflector(multi.reflector(i));
  }
  for (const SourceReflectorEdge& e : multi.sr_edges()) {
    out.add_source_reflector_edge(e);
  }
  for (int j = 0; j < multi.num_sinks(); ++j) {
    for (const auto& [commodity, threshold] : demands[static_cast<std::size_t>(j)]) {
      Sink copy = multi.sink(j);
      copy.name += "#" + std::to_string(commodity);
      copy.commodity = commodity;
      copy.threshold = threshold;
      const int jj = out.add_sink(copy);
      for (int id : multi.sink_in(j)) {
        ReflectorSinkEdge edge = multi.rd_edge(id);
        edge.sink = jj;
        out.add_reflector_sink_edge(edge);
      }
    }
  }
  return out;
}

}  // namespace omn::net
