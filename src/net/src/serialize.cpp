#include "omn/net/serialize.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "omn/util/parse.hpp"

namespace omn::net {

namespace {

/// Capacity fields are the one place the loader reads a token itself (to
/// admit the "inf" spelling); everything else goes through operator>>.
/// Strict full-token parsing here, so "3.0x" or "nan" is a corrupt file,
/// not a silently truncated capacity.
double parse_capacity(const std::string& token, const char* field) {
  const std::optional<double> value = util::parse_double(token);
  if (!value.has_value()) {
    throw std::runtime_error(std::string("OverlayInstance load: bad ") +
                             field + " capacity '" + token + "'");
  }
  return *value;
}

constexpr const char* kMagic = "omn-instance";
// v1: no delays; v2: appends delay_ms to each edge line.  The loader
// accepts both (v1 edges get delay 0).
constexpr const char* kVersionV1 = "v1";
constexpr const char* kVersion = "v2";

std::string safe_name(const std::string& name) {
  std::string out = name.empty() ? "_" : name;
  for (char& ch : out) {
    if (std::isspace(static_cast<unsigned char>(ch))) ch = '_';
  }
  return out;
}

void expect(std::istream& is, const std::string& token) {
  std::string got;
  if (!(is >> got) || got != token) {
    throw std::runtime_error("OverlayInstance load: expected '" + token +
                             "', got '" + got + "'");
  }
}

}  // namespace

void save(const OverlayInstance& instance, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n';
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "sources " << instance.num_sources() << '\n';
  for (int k = 0; k < instance.num_sources(); ++k) {
    const Source& s = instance.source(k);
    os << safe_name(s.name) << ' ' << s.bandwidth << '\n';
  }
  os << "reflectors " << instance.num_reflectors() << '\n';
  for (int i = 0; i < instance.num_reflectors(); ++i) {
    const Reflector& r = instance.reflector(i);
    os << safe_name(r.name) << ' ' << r.build_cost << ' ' << r.fanout << ' '
       << r.color << ' ';
    if (r.stream_capacity) {
      os << *r.stream_capacity;
    } else {
      os << "inf";
    }
    os << '\n';
  }
  os << "sinks " << instance.num_sinks() << '\n';
  for (int j = 0; j < instance.num_sinks(); ++j) {
    const Sink& d = instance.sink(j);
    os << safe_name(d.name) << ' ' << d.commodity << ' ' << d.threshold << '\n';
  }
  os << "sr_edges " << instance.sr_edges().size() << '\n';
  for (const SourceReflectorEdge& e : instance.sr_edges()) {
    os << e.source << ' ' << e.reflector << ' ' << e.cost << ' ' << e.loss
       << ' ' << e.delay_ms << '\n';
  }
  os << "rd_edges " << instance.rd_edges().size() << '\n';
  for (const ReflectorSinkEdge& e : instance.rd_edges()) {
    os << e.reflector << ' ' << e.sink << ' ' << e.cost << ' ' << e.loss << ' ';
    if (e.capacity) {
      os << *e.capacity;
    } else {
      os << "inf";
    }
    os << ' ' << e.delay_ms << '\n';
  }
}

OverlayInstance load(std::istream& is) {
  expect(is, kMagic);
  std::string version;
  if (!(is >> version) || (version != kVersionV1 && version != kVersion)) {
    throw std::runtime_error("OverlayInstance load: unsupported version '" +
                             version + "'");
  }
  const bool has_delays = version == kVersion;
  OverlayInstance out;

  std::size_t count = 0;
  expect(is, "sources");
  is >> count;
  for (std::size_t k = 0; k < count; ++k) {
    Source s;
    if (!(is >> s.name >> s.bandwidth)) {
      throw std::runtime_error("OverlayInstance load: truncated sources");
    }
    out.add_source(std::move(s));
  }
  expect(is, "reflectors");
  is >> count;
  for (std::size_t i = 0; i < count; ++i) {
    Reflector r;
    if (!(is >> r.name >> r.build_cost >> r.fanout >> r.color)) {
      throw std::runtime_error("OverlayInstance load: truncated reflectors");
    }
    if (has_delays) {  // v2 also carries the stream capacity
      std::string capacity;
      if (!(is >> capacity)) {
        throw std::runtime_error(
            "OverlayInstance load: truncated reflector capacity");
      }
      if (capacity != "inf") {
        r.stream_capacity = parse_capacity(capacity, "reflector");
      }
    }
    out.add_reflector(std::move(r));
  }
  expect(is, "sinks");
  is >> count;
  for (std::size_t j = 0; j < count; ++j) {
    Sink d;
    if (!(is >> d.name >> d.commodity >> d.threshold)) {
      throw std::runtime_error("OverlayInstance load: truncated sinks");
    }
    out.add_sink(std::move(d));
  }
  expect(is, "sr_edges");
  is >> count;
  for (std::size_t e = 0; e < count; ++e) {
    SourceReflectorEdge edge;
    if (!(is >> edge.source >> edge.reflector >> edge.cost >> edge.loss)) {
      throw std::runtime_error("OverlayInstance load: truncated sr_edges");
    }
    if (has_delays && !(is >> edge.delay_ms)) {
      throw std::runtime_error("OverlayInstance load: truncated sr delay");
    }
    out.add_source_reflector_edge(edge);
  }
  expect(is, "rd_edges");
  is >> count;
  for (std::size_t e = 0; e < count; ++e) {
    ReflectorSinkEdge edge;
    std::string capacity;
    if (!(is >> edge.reflector >> edge.sink >> edge.cost >> edge.loss >>
          capacity)) {
      throw std::runtime_error("OverlayInstance load: truncated rd_edges");
    }
    if (capacity != "inf") edge.capacity = parse_capacity(capacity, "rd-edge");
    if (has_delays && !(is >> edge.delay_ms)) {
      throw std::runtime_error("OverlayInstance load: truncated rd delay");
    }
    out.add_reflector_sink_edge(edge);
  }
  out.validate();
  return out;
}

std::string to_text(const OverlayInstance& instance) {
  std::ostringstream os;
  save(instance, os);
  return os.str();
}

OverlayInstance from_text(const std::string& text) {
  std::istringstream is(text);
  return load(is);
}

void save_file(const OverlayInstance& instance, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("OverlayInstance save: cannot open " + path);
  save(instance, os);
}

OverlayInstance load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("OverlayInstance load: cannot open " + path);
  return load(is);
}

}  // namespace omn::net
