#pragma once
// The 3-level overlay network design instance (paper Section 2).
//
// A tripartite digraph N = (V, E), V = S ∪ R ∪ D:
//   sources (entrypoints)  -- commodity k originates at source k (the paper's
//                             WLOG normalization |S| = #commodities);
//   reflectors             -- splitters with build cost r_i, fanout F_i, and
//                             an ISP "color" for the Section-6.4 extension;
//   sinks (edgeservers)    -- each demands exactly ONE commodity (the
//                             paper's WLOG; expand_multi_demand() performs
//                             the sink-copying reduction for callers with
//                             multi-stream edgeservers).
//
// Edges carry dollar costs and independent packet-loss probabilities; the
// algorithm works on negative-log weights (paper Section 2):
//   w^k_ij = -log(p_ki + p_ij - p_ki * p_ij)     path k -> i -> j
//   W^k_j  = -log(1 - Phi^k_j)                   demand weight of sink j.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace omn::net {

/// Loss probabilities are clamped to at least kMinFailure when converted to
/// weights so that a single perfect path cannot claim infinite weight.
inline constexpr double kMinFailure = 1e-9;

struct Source {
  std::string name;
  /// Extension 6.1: bandwidth B^k of this stream, in capacity units.
  double bandwidth = 1.0;
};

struct Reflector {
  std::string name;
  /// Build cost r_i (paid once if the reflector is used at all).
  double build_cost = 0.0;
  /// Fanout F_i: max number of outgoing stream copies (sum over all
  /// commodities and sinks), weighted by bandwidth under extension 6.1.
  double fanout = 1.0;
  /// ISP group for the color constraints (extension 6.4).
  int color = 0;
  /// Extension 6.2, constraint (8): max number of distinct streams this
  /// reflector may ingest (sum_k y^k_i <= u_i).  nullopt = unlimited.
  /// The paper proves only a c log n violation guarantee is possible here.
  std::optional<double> stream_capacity;
};

struct Sink {
  std::string name;
  /// Index of the demanded commodity (== index of its source).
  int commodity = 0;
  /// Phi^k_j: required probability that at least one copy of each packet
  /// arrives, post reconstruction.  Must lie in (0, 1).
  double threshold = 0.99;
};

/// Source k -> reflector i edge.
struct SourceReflectorEdge {
  int source = 0;
  int reflector = 0;
  /// c^k_ki: dollar cost of carrying stream k to reflector i.
  double cost = 0.0;
  /// p_ki: probability a packet is lost on this edge.
  double loss = 0.0;
  /// Propagation delay in milliseconds (paper Section 1.2: packets that
  /// arrive very late are effectively useless; the simulator enforces a
  /// playback deadline against path delays).
  double delay_ms = 0.0;
};

/// Reflector i -> sink j edge (commodity implied by the sink's demand).
struct ReflectorSinkEdge {
  int reflector = 0;
  int sink = 0;
  /// c^k_ij: dollar cost of serving the sink's stream via this edge.
  double cost = 0.0;
  /// p_ij: probability a packet is lost on this edge.
  double loss = 0.0;
  /// Extension 6.3: max commodities routed on this edge (nullopt = inf).
  std::optional<double> capacity;
  /// Propagation delay in milliseconds (see SourceReflectorEdge::delay_ms).
  double delay_ms = 0.0;
};

class OverlayInstance {
 public:
  int add_source(Source source);
  int add_reflector(Reflector reflector);
  int add_sink(Sink sink);
  /// Returns the edge id.  At most one edge per (source, reflector) pair.
  int add_source_reflector_edge(SourceReflectorEdge edge);
  /// Returns the edge id.  At most one edge per (reflector, sink) pair.
  int add_reflector_sink_edge(ReflectorSinkEdge edge);

  int num_sources() const { return static_cast<int>(sources_.size()); }
  int num_reflectors() const { return static_cast<int>(reflectors_.size()); }
  int num_sinks() const { return static_cast<int>(sinks_.size()); }
  int num_colors() const;

  const Source& source(int k) const { return sources_.at(static_cast<std::size_t>(k)); }
  const Reflector& reflector(int i) const { return reflectors_.at(static_cast<std::size_t>(i)); }
  const Sink& sink(int j) const { return sinks_.at(static_cast<std::size_t>(j)); }
  Source& source(int k) { return sources_.at(static_cast<std::size_t>(k)); }
  Reflector& reflector(int i) { return reflectors_.at(static_cast<std::size_t>(i)); }
  Sink& sink(int j) { return sinks_.at(static_cast<std::size_t>(j)); }

  const std::vector<SourceReflectorEdge>& sr_edges() const { return sr_edges_; }
  const std::vector<ReflectorSinkEdge>& rd_edges() const { return rd_edges_; }
  SourceReflectorEdge& sr_edge(int id) { return sr_edges_.at(static_cast<std::size_t>(id)); }
  ReflectorSinkEdge& rd_edge(int id) { return rd_edges_.at(static_cast<std::size_t>(id)); }
  const SourceReflectorEdge& sr_edge(int id) const { return sr_edges_.at(static_cast<std::size_t>(id)); }
  const ReflectorSinkEdge& rd_edge(int id) const { return rd_edges_.at(static_cast<std::size_t>(id)); }

  /// Id of the k -> i edge, or -1 when absent.  O(1) after freeze().
  int find_sr_edge(int source, int reflector) const;
  /// Id of the i -> j edge, or -1 when absent.  O(out-degree of i).
  int find_rd_edge(int reflector, int sink) const;

  /// Edge ids leaving reflector i toward sinks.
  const std::vector<int>& reflector_out(int reflector) const;
  /// Edge ids entering sink j.
  const std::vector<int>& sink_in(int sink) const;
  /// Edge ids from source k into reflectors.
  const std::vector<int>& source_out(int source) const;

  /// Builds the adjacency indexes above.  Called automatically by accessors
  /// when dirty; cheap to call repeatedly.
  void freeze() const;

  /// Throws std::invalid_argument when the instance is malformed
  /// (probabilities outside [0,1], thresholds outside (0,1), dangling
  /// indices, duplicate edges, non-positive fanout...).
  void validate() const;

  // ---- weight transforms (paper Section 2) -------------------------------

  /// Failure probability of the two-hop path: p_ki + p_ij - p_ki * p_ij.
  static double path_failure(double loss_sr, double loss_rd);

  /// w^k_ij = -log(path failure), clamped via kMinFailure.
  static double path_weight(double loss_sr, double loss_rd);

  /// W^k_j = -log(1 - threshold).
  static double demand_weight(double threshold);

  /// Weight of the path source(k(j)) -> i -> j, or nullopt when either edge
  /// is absent.
  std::optional<double> weight(int reflector, int sink) const;

  /// Demand weight of sink j.
  double sink_demand_weight(int sink) const;

  // ---- reductions ---------------------------------------------------------

  /// The paper's WLOG reduction: a sink demanding several commodities is
  /// replaced by one copy per commodity, each inheriting the incoming
  /// edges.  `demands[j]` lists (commodity, threshold) pairs for original
  /// sink j of `multi`; returns the expanded instance.
  static OverlayInstance expand_multi_demand(
      const OverlayInstance& multi,
      const std::vector<std::vector<std::pair<int, double>>>& demands);

  /// Sum over sinks of demand weight (useful scale for reports).
  double total_demand_weight() const;

 private:
  std::vector<Source> sources_;
  std::vector<Reflector> reflectors_;
  std::vector<Sink> sinks_;
  std::vector<SourceReflectorEdge> sr_edges_;
  std::vector<ReflectorSinkEdge> rd_edges_;

  // Lazily built adjacency (mutable: freeze() is conceptually const).
  mutable bool frozen_ = false;
  mutable std::vector<std::vector<int>> reflector_out_;
  mutable std::vector<std::vector<int>> sink_in_;
  mutable std::vector<std::vector<int>> source_out_;
  mutable std::vector<std::vector<int>> sr_lookup_;  // [source][reflector] -> id
};

}  // namespace omn::net
