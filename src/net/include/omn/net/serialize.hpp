#pragma once
// Plain-text (de)serialization of OverlayInstance.
//
// Format (version header then one section per entity; names are
// whitespace-free tokens; `inf` = absent capacity):
//
//   omn-instance v2
//   sources <n>
//     <name> <bandwidth>
//   reflectors <n>
//     <name> <build_cost> <fanout> <color> <stream_capacity|inf>
//   sinks <n>
//     <name> <commodity> <threshold>
//   sr_edges <n>
//     <source> <reflector> <cost> <loss> <delay_ms>
//   rd_edges <n>
//     <reflector> <sink> <cost> <loss> <capacity|inf> <delay_ms>
//
// The v1 layout (no stream-capacity column, no delay columns) is still
// accepted on load; absent fields default to unlimited / 0.

#include <iosfwd>
#include <string>

#include "omn/net/instance.hpp"

namespace omn::net {

void save(const OverlayInstance& instance, std::ostream& os);
OverlayInstance load(std::istream& is);

std::string to_text(const OverlayInstance& instance);
OverlayInstance from_text(const std::string& text);

void save_file(const OverlayInstance& instance, const std::string& path);
OverlayInstance load_file(const std::string& path);

}  // namespace omn::net
