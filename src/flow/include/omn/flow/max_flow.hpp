#pragma once
// Dinic's blocking-flow max-flow.
//
// Used directly by the Figure-3 integrality-gap experiment and as the
// feasibility engine inside the Section-5 GAP rounding (checking that the
// box network saturates every sink-box demand).

#include <cstdint>

#include "omn/flow/graph.hpp"

namespace omn::flow {

/// Computes a maximum s-t flow, mutating residual capacities in `graph`.
/// Returns the flow value.  O(V^2 E) worst case; unit-capacity layered
/// networks (our use) run in O(E sqrt(V)).
std::int64_t max_flow(Graph& graph, int source, int sink);

}  // namespace omn::flow
