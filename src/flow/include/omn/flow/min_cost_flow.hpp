#pragma once
// Min-cost flow via successive shortest augmenting paths with node
// potentials (Dijkstra after a Bellman-Ford initialization, so graphs with
// negative-cost edges are accepted as long as no negative cycle is
// reachable with positive residual capacity).
//
// The Section-5 rounding needs: "there exists a maximum flow with flow
// variables equal to 0, 1/2 or 1 that has a cost at most C-bar" — we scale
// the half-integral capacities by 2 and ask this solver for an integral
// min-cost maximum flow, whose cost is no larger than the fractional one by
// flow integrality.

#include <cstdint>

#include "omn/flow/graph.hpp"

namespace omn::flow {

struct MinCostFlowResult {
  /// Units of flow actually routed (<= requested).
  std::int64_t flow = 0;
  /// Total cost of the routed flow.
  double cost = 0.0;
  /// True when the requested amount was fully routed.
  bool reached_target = false;
};

/// Routes up to `target` units of minimum-cost flow from source to sink,
/// mutating residual capacities in `graph`.  Pass
/// std::numeric_limits<int64_t>::max() for a min-cost *max* flow.
MinCostFlowResult min_cost_flow(Graph& graph, int source, int sink,
                                std::int64_t target);

}  // namespace omn::flow
