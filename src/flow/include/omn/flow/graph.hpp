#pragma once
// Residual flow network shared by the max-flow and min-cost-flow solvers.
//
// The Section-5 "modified GAP" rounding builds a five-level network whose
// natural capacities are half-integral; callers scale them by 2 so all
// capacities here are integers (int64).  Costs are real-valued (they carry
// the LP's dollar costs), so the min-cost solver uses epsilon-aware
// comparisons.

#include <cstdint>
#include <vector>

namespace omn::flow {

/// One directed edge plus its residual twin.
struct Edge {
  int to = 0;
  std::int64_t capacity = 0;  // residual capacity
  double cost = 0.0;
  int twin = 0;  // index of the reverse edge in edges()
};

class Graph {
 public:
  explicit Graph(int num_nodes);

  /// Adds edge u -> v; returns an edge id usable with flow_on()/edge().
  /// A reverse edge with zero capacity and negated cost is added
  /// automatically.
  int add_edge(int u, int v, std::int64_t capacity, double cost = 0.0);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()) / 2; }

  const Edge& edge(int id) const { return edges_.at(static_cast<std::size_t>(id)); }
  Edge& edge(int id) { return edges_.at(static_cast<std::size_t>(id)); }

  /// Flow currently routed on forward edge `id` (= residual capacity of its
  /// twin).
  std::int64_t flow_on(int id) const;

  /// Original capacity of forward edge `id` (current residual + flow).
  std::int64_t capacity_of(int id) const;

  const std::vector<int>& out_edges(int node) const {
    return adjacency_.at(static_cast<std::size_t>(node));
  }

  /// Resets all flow (restores residual capacities to the originals).
  void reset_flow();

 private:
  std::vector<Edge> edges_;
  std::vector<std::int64_t> original_capacity_;  // per edge id (both dirs)
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace omn::flow
