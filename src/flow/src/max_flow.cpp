#include "omn/flow/max_flow.hpp"

#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

namespace omn::flow {

namespace {

class Dinic {
 public:
  Dinic(Graph& graph, int source, int sink)
      : graph_(graph), source_(source), sink_(sink),
        level_(static_cast<std::size_t>(graph.num_nodes())),
        next_(static_cast<std::size_t>(graph.num_nodes())) {}

  std::int64_t run() {
    std::int64_t total = 0;
    while (build_levels()) {
      std::fill(next_.begin(), next_.end(), 0);
      for (;;) {
        const std::int64_t pushed =
            push(source_, std::numeric_limits<std::int64_t>::max());
        if (pushed == 0) break;
        total += pushed;
      }
    }
    return total;
  }

 private:
  bool build_levels() {
    std::fill(level_.begin(), level_.end(), -1);
    std::queue<int> queue;
    level_[static_cast<std::size_t>(source_)] = 0;
    queue.push(source_);
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop();
      for (int id : graph_.out_edges(u)) {
        const Edge& e = graph_.edge(id);
        if (e.capacity <= 0) continue;
        if (level_[static_cast<std::size_t>(e.to)] >= 0) continue;
        level_[static_cast<std::size_t>(e.to)] =
            level_[static_cast<std::size_t>(u)] + 1;
        queue.push(e.to);
      }
    }
    return level_[static_cast<std::size_t>(sink_)] >= 0;
  }

  std::int64_t push(int u, std::int64_t limit) {
    if (u == sink_) return limit;
    const auto& out = graph_.out_edges(u);
    for (auto& i = next_[static_cast<std::size_t>(u)];
         i < static_cast<int>(out.size()); ++i) {
      const int id = out[static_cast<std::size_t>(i)];
      Edge& e = graph_.edge(id);
      if (e.capacity <= 0) continue;
      if (level_[static_cast<std::size_t>(e.to)] !=
          level_[static_cast<std::size_t>(u)] + 1) {
        continue;
      }
      const std::int64_t pushed = push(e.to, std::min(limit, e.capacity));
      if (pushed > 0) {
        e.capacity -= pushed;
        graph_.edge(e.twin).capacity += pushed;
        return pushed;
      }
    }
    return 0;
  }

  Graph& graph_;
  int source_;
  int sink_;
  std::vector<int> level_;
  std::vector<int> next_;
};

}  // namespace

std::int64_t max_flow(Graph& graph, int source, int sink) {
  if (source < 0 || source >= graph.num_nodes() || sink < 0 ||
      sink >= graph.num_nodes()) {
    throw std::out_of_range("max_flow: node out of range");
  }
  if (source == sink) throw std::invalid_argument("max_flow: source == sink");
  return Dinic(graph, source, sink).run();
}

}  // namespace omn::flow
