#include "omn/flow/min_cost_flow.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

namespace omn::flow {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;

/// Bellman-Ford over residual edges to initialize potentials when negative
/// costs are present.  Throws on a residual negative cycle.
std::vector<double> bellman_ford(const Graph& graph, int source) {
  const auto n = static_cast<std::size_t>(graph.num_nodes());
  std::vector<double> dist(n, kInf);
  dist[static_cast<std::size_t>(source)] = 0.0;
  bool changed = true;
  for (int pass = 0; pass < graph.num_nodes() && changed; ++pass) {
    changed = false;
    for (int u = 0; u < graph.num_nodes(); ++u) {
      if (dist[static_cast<std::size_t>(u)] == kInf) continue;
      for (int id : graph.out_edges(u)) {
        const Edge& e = graph.edge(id);
        if (e.capacity <= 0) continue;
        const double cand = dist[static_cast<std::size_t>(u)] + e.cost;
        if (cand < dist[static_cast<std::size_t>(e.to)] - kEps) {
          dist[static_cast<std::size_t>(e.to)] = cand;
          changed = true;
        }
      }
    }
  }
  if (changed) {
    throw std::runtime_error("min_cost_flow: negative residual cycle");
  }
  // Unreached nodes keep infinite potential; Dijkstra treats them lazily.
  return dist;
}

}  // namespace

MinCostFlowResult min_cost_flow(Graph& graph, int source, int sink,
                                std::int64_t target) {
  if (source < 0 || source >= graph.num_nodes() || sink < 0 ||
      sink >= graph.num_nodes()) {
    throw std::out_of_range("min_cost_flow: node out of range");
  }
  if (source == sink) {
    throw std::invalid_argument("min_cost_flow: source == sink");
  }

  bool has_negative = false;
  for (int u = 0; u < graph.num_nodes() && !has_negative; ++u) {
    for (int id : graph.out_edges(u)) {
      const Edge& e = graph.edge(id);
      if (e.capacity > 0 && e.cost < -kEps) {
        has_negative = true;
        break;
      }
    }
  }

  const auto n = static_cast<std::size_t>(graph.num_nodes());
  std::vector<double> potential(n, 0.0);
  if (has_negative) potential = bellman_ford(graph, source);

  MinCostFlowResult result;
  std::vector<double> dist(n);
  std::vector<int> parent_edge(n);

  while (result.flow < target) {
    // Dijkstra on reduced costs.
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(parent_edge.begin(), parent_edge.end(), -1);
    using Item = std::pair<double, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    dist[static_cast<std::size_t>(source)] = 0.0;
    heap.emplace(0.0, source);
    while (!heap.empty()) {
      const auto [du, u] = heap.top();
      heap.pop();
      if (du > dist[static_cast<std::size_t>(u)] + kEps) continue;
      if (potential[static_cast<std::size_t>(u)] == kInf) continue;
      for (int id : graph.out_edges(u)) {
        const Edge& e = graph.edge(id);
        if (e.capacity <= 0) continue;
        if (potential[static_cast<std::size_t>(e.to)] == kInf) {
          // Node untouched by Bellman-Ford: give it the tentative label.
          potential[static_cast<std::size_t>(e.to)] =
              potential[static_cast<std::size_t>(u)] + e.cost;
        }
        const double reduced = e.cost + potential[static_cast<std::size_t>(u)] -
                               potential[static_cast<std::size_t>(e.to)];
        const double cand = du + std::max(reduced, 0.0);
        if (cand < dist[static_cast<std::size_t>(e.to)] - kEps) {
          dist[static_cast<std::size_t>(e.to)] = cand;
          parent_edge[static_cast<std::size_t>(e.to)] = id;
          heap.emplace(cand, e.to);
        }
      }
    }
    if (parent_edge[static_cast<std::size_t>(sink)] < 0) break;  // saturated

    // Update potentials with the new shortest distances.
    for (std::size_t v = 0; v < n; ++v) {
      if (dist[v] < kInf) potential[v] += dist[v];
    }

    // Find bottleneck along the augmenting path.
    std::int64_t bottleneck = target - result.flow;
    for (int v = sink; v != source;) {
      const Edge& e = graph.edge(parent_edge[static_cast<std::size_t>(v)]);
      bottleneck = std::min(bottleneck, e.capacity);
      v = graph.edge(e.twin).to;
    }
    // Augment.
    for (int v = sink; v != source;) {
      Edge& e = graph.edge(parent_edge[static_cast<std::size_t>(v)]);
      e.capacity -= bottleneck;
      graph.edge(e.twin).capacity += bottleneck;
      result.cost += e.cost * static_cast<double>(bottleneck);
      v = graph.edge(e.twin).to;
    }
    result.flow += bottleneck;
  }
  result.reached_target = result.flow >= target;
  return result;
}

}  // namespace omn::flow
