#include "omn/flow/graph.hpp"

#include <stdexcept>

namespace omn::flow {

Graph::Graph(int num_nodes) {
  if (num_nodes < 0) throw std::invalid_argument("Graph: negative node count");
  adjacency_.resize(static_cast<std::size_t>(num_nodes));
}

int Graph::add_edge(int u, int v, std::int64_t capacity, double cost) {
  if (u < 0 || u >= num_nodes() || v < 0 || v >= num_nodes()) {
    throw std::out_of_range("Graph: endpoint out of range");
  }
  if (capacity < 0) throw std::invalid_argument("Graph: negative capacity");
  const int fwd = static_cast<int>(edges_.size());
  const int bwd = fwd + 1;
  edges_.push_back(Edge{v, capacity, cost, bwd});
  edges_.push_back(Edge{u, 0, -cost, fwd});
  original_capacity_.push_back(capacity);
  original_capacity_.push_back(0);
  adjacency_[static_cast<std::size_t>(u)].push_back(fwd);
  adjacency_[static_cast<std::size_t>(v)].push_back(bwd);
  return fwd;
}

std::int64_t Graph::flow_on(int id) const {
  const Edge& e = edges_.at(static_cast<std::size_t>(id));
  return edges_[static_cast<std::size_t>(e.twin)].capacity -
         original_capacity_[static_cast<std::size_t>(e.twin)];
}

std::int64_t Graph::capacity_of(int id) const {
  return original_capacity_.at(static_cast<std::size_t>(id)) == 0 &&
                 (id & 1) == 1
             ? 0
             : original_capacity_[static_cast<std::size_t>(id)];
}

void Graph::reset_flow() {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    edges_[i].capacity = original_capacity_[i];
  }
}

}  // namespace omn::flow
